//! The reordering LUT (§IV-B): weight reordering as a single lookup.
//!
//! Canonicalization requires permuting the packed weight vector by the
//! activation's sorting permutation — unpack, permute, repack is expensive
//! on the feeble DPU core. The reordering LUT precomputes it: indexed by
//! the packed weight row and the sorting-permutation id (Lehmer rank), each
//! entry is the already-reordered packed weight row, ready to index the
//! canonical LUT. It has `p!` columns and `2^(bw·p)` rows.

use crate::packed::check_index_width;
use crate::perm::{factorial, lehmer_unrank};
use crate::LocaLutError;

/// A fully materialized reordering LUT.
///
/// # Examples
///
/// ```
/// use localut::reorder::ReorderLut;
/// use localut::packed::{pack_index, unpack_index};
/// use localut::perm::{lehmer_rank, sort_permutation};
///
/// // Fig. 5: weights [0,0,1] under the sorting permutation of
/// // activations [3,0,2] reorder to [0,1,0] — in one lookup.
/// let lut = ReorderLut::build(1, 3, 1 << 16)?;
/// let perm_id = lehmer_rank(&sort_permutation(&[3, 0, 2]))?;
/// let reordered = lut.lookup(pack_index(&[0, 0, 1], 1), perm_id);
/// assert_eq!(unpack_index(reordered, 1, 3), vec![0, 1, 0]);
/// # Ok::<(), localut::LocaLutError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReorderLut {
    bits: u8,
    p: u32,
    rows: u64,
    cols: u64,
    /// Column-major entries: `entries[perm_id * rows + row]` is the packed
    /// reordered weight row.
    entries: Vec<u64>,
}

impl ReorderLut {
    /// Precomputes the reordering LUT for `bits`-wide weight codes packed
    /// `p` at a time.
    ///
    /// # Errors
    ///
    /// * [`LocaLutError::IndexSpaceTooWide`] when the packed weight index
    ///   exceeds 48 bits.
    /// * [`LocaLutError::BudgetExceeded`] when `2^(bits·p) · p!` exceeds
    ///   `max_entries`.
    pub fn build(bits: u8, p: u32, max_entries: u64) -> Result<Self, LocaLutError> {
        check_index_width(bits, p)?;
        let rows = 1u64 << (u32::from(bits) * p);
        let cols = factorial(p).ok_or(LocaLutError::InvalidPackingDegree(p))?;
        let total = u128::from(rows) * u128::from(cols);
        if total > u128::from(max_entries) {
            return Err(LocaLutError::BudgetExceeded {
                required: total,
                budget: max_entries,
            });
        }
        // Each column is a fixed shuffle of the row index's `p` bit-fields
        // (`entry = Σ_j codes[perm[j]] << bits·j`). Going through
        // unpack/apply/pack would allocate twice per entry — ~20 M
        // allocations at `p = 8` — and dominate the host launch cost.
        // Because the shuffle is independent per field, the contributions of
        // the low `h` and high `p − h` input fields are precomputed into two
        // small tables per column, reducing each entry to two lookups.
        let bits_u = u32::from(bits);
        let mask = (1u64 << bits) - 1;
        let h = p / 2;
        let lo_bits = bits_u * h;
        let lo_rows = 1u64 << lo_bits;
        let mut tlo = vec![0u64; lo_rows as usize];
        let mut thi = vec![0u64; (rows >> lo_bits) as usize];
        let mut dst_shift = vec![0u32; p as usize];
        let mut entries = vec![0u64; total as usize];
        for (perm_id, column) in entries.chunks_exact_mut(rows as usize).enumerate() {
            let perm = lehmer_unrank(perm_id as u64, p)?;
            // dst_shift[src] is where input field `src` lands in the output.
            for (j, &src) in perm.iter().enumerate() {
                dst_shift[usize::from(src)] = bits_u * j as u32;
            }
            for (v, t) in tlo.iter_mut().enumerate() {
                let mut packed = 0u64;
                for (src, &dst) in dst_shift[..h as usize].iter().enumerate() {
                    packed |= ((v as u64 >> (bits_u * src as u32)) & mask) << dst;
                }
                *t = packed;
            }
            for (v, t) in thi.iter_mut().enumerate() {
                let mut packed = 0u64;
                for (src, &dst) in dst_shift[h as usize..].iter().enumerate() {
                    packed |= ((v as u64 >> (bits_u * src as u32)) & mask) << dst;
                }
                *t = packed;
            }
            for (block, &base) in column.chunks_exact_mut(lo_rows as usize).zip(thi.iter()) {
                for (entry, &lo) in block.iter_mut().zip(tlo.iter()) {
                    *entry = base | lo;
                }
            }
        }
        Ok(ReorderLut {
            bits,
            p,
            rows,
            cols,
            entries,
        })
    }

    /// Reassembles a LUT from previously materialized column-major
    /// entries (a persisted image). The shape is re-derived from
    /// `(bits, p)` exactly as [`ReorderLut::build`] derives it; callers
    /// remain responsible for the entry *values* (persistence layers
    /// checksum them).
    ///
    /// # Errors
    ///
    /// * [`LocaLutError::IndexSpaceTooWide`] /
    ///   [`LocaLutError::InvalidPackingDegree`] as in `build`.
    /// * [`LocaLutError::UnsupportedFormat`] when `entries.len()` does
    ///   not match the `2^(bits·p) · p!` shape.
    pub fn from_parts(bits: u8, p: u32, entries: Vec<u64>) -> Result<Self, LocaLutError> {
        check_index_width(bits, p)?;
        let rows = 1u64 << (u32::from(bits) * p);
        let cols = factorial(p).ok_or(LocaLutError::InvalidPackingDegree(p))?;
        if u128::from(rows) * u128::from(cols) != entries.len() as u128 {
            return Err(LocaLutError::UnsupportedFormat(
                "reordering LUT entry count does not match the (bits, p) shape",
            ));
        }
        Ok(ReorderLut {
            bits,
            p,
            rows,
            cols,
            entries,
        })
    }

    /// The packing degree.
    #[must_use]
    pub fn p(&self) -> u32 {
        self.p
    }

    /// The raw column-major entry storage (`entries[perm_id * rows + row]`),
    /// for persistence layers that serialize the image.
    #[must_use]
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }

    /// Weight code bitwidth.
    #[must_use]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of packed weight rows, `2^(bits·p)`.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of permutation columns, `p!`.
    #[must_use]
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Total entry count.
    #[must_use]
    pub fn entry_count(&self) -> u64 {
        self.rows * self.cols
    }

    /// Bytes per entry when stored packed (`ceil(bits·p / 8)`).
    #[must_use]
    pub fn entry_bytes(&self) -> u64 {
        u64::from(u32::from(self.bits) * self.p).div_ceil(8)
    }

    /// Looks up the reordered packed weight row for a permutation id.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    #[must_use]
    pub fn lookup(&self, row: u64, perm_id: u64) -> u64 {
        assert!(
            row < self.rows && perm_id < self.cols,
            "reordering LUT index out of range"
        );
        self.entries[(perm_id * self.rows + row) as usize]
    }

    /// The contiguous column slice for one permutation id (streamed
    /// alongside the canonical slice in §IV-C).
    ///
    /// # Panics
    ///
    /// Panics when `perm_id` is out of range.
    #[must_use]
    pub fn column_slice(&self, perm_id: u64) -> &[u64] {
        assert!(perm_id < self.cols, "reordering LUT column out of range");
        let start = (perm_id * self.rows) as usize;
        &self.entries[start..start + self.rows as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packed::{pack_index, unpack_index};
    use crate::perm::{apply, lehmer_rank, sort_permutation};

    #[test]
    fn shape_matches_formulas() {
        let lut = ReorderLut::build(1, 4, 1 << 20).unwrap();
        assert_eq!(lut.rows(), 16);
        assert_eq!(lut.cols(), 24); // 4!
        assert_eq!(lut.entry_count(), 384);
        assert_eq!(lut.entry_bytes(), 1); // 4 bits -> 1 byte
        let wide = ReorderLut::build(4, 3, 1 << 20).unwrap();
        assert_eq!(wide.entry_bytes(), 2); // 12 bits -> 2 bytes
    }

    #[test]
    fn identity_permutation_is_identity_map() {
        let lut = ReorderLut::build(2, 3, 1 << 20).unwrap();
        let id_rank = lehmer_rank(&[0, 1, 2]).unwrap();
        for row in 0..lut.rows() {
            assert_eq!(lut.lookup(row, id_rank), row);
        }
    }

    #[test]
    fn paper_fig5_example() {
        // Fig. 5: weights [0,0,1] with the sorting permutation of
        // activations [3,0,2] (perm [1,2,0]) reorder to [0,1,0].
        let lut = ReorderLut::build(1, 3, 1 << 16).unwrap();
        let a = [3u16, 0, 2];
        let perm = sort_permutation(&a);
        let perm_id = lehmer_rank(&perm).unwrap();
        let row = pack_index(&[0, 0, 1], 1);
        let reordered = lut.lookup(row, perm_id);
        assert_eq!(unpack_index(reordered, 1, 3), vec![0, 1, 0]);
    }

    #[test]
    fn lookup_agrees_with_software_reorder_everywhere() {
        let lut = ReorderLut::build(2, 3, 1 << 20).unwrap();
        for perm_id in 0..lut.cols() {
            let perm = lehmer_unrank(perm_id, 3).unwrap();
            for row in 0..lut.rows() {
                let codes = unpack_index(row, 2, 3);
                let expect = pack_index(&apply(&perm, &codes), 2);
                assert_eq!(lut.lookup(row, perm_id), expect);
            }
        }
    }

    #[test]
    fn column_slice_matches_lookups() {
        let lut = ReorderLut::build(1, 3, 1 << 16).unwrap();
        for perm_id in 0..lut.cols() {
            let slice = lut.column_slice(perm_id);
            for row in 0..lut.rows() {
                assert_eq!(slice[row as usize], lut.lookup(row, perm_id));
            }
        }
    }

    #[test]
    fn budget_guard() {
        let err = ReorderLut::build(1, 8, 1000).unwrap_err();
        assert!(matches!(err, LocaLutError::BudgetExceeded { .. }));
    }

    #[test]
    fn reordering_is_a_bijection_per_column() {
        // Each permutation column must be a bijection on packed rows.
        let lut = ReorderLut::build(2, 2, 1 << 16).unwrap();
        for perm_id in 0..lut.cols() {
            let mut seen = std::collections::HashSet::new();
            for row in 0..lut.rows() {
                assert!(seen.insert(lut.lookup(row, perm_id)));
            }
            assert_eq!(seen.len() as u64, lut.rows());
        }
    }
}
