//! The scalar value type stored in LUT entries.
//!
//! Integer configs accumulate exactly in `i32` (LUT-based GEMM is bit-exact
//! against a reference integer GEMM); the floating-point extension of §VI-K
//! stores `f32` entries. The LUT structures are generic over this trait so
//! both share one implementation.

use quant::NumericFormat;

/// A scalar usable as a LUT entry: decodable from a format, multipliable,
/// and accumulable.
pub trait LutValue:
    Copy + Default + PartialEq + core::fmt::Debug + core::ops::AddAssign + 'static
{
    /// Decodes a codeword of `format` into a value.
    ///
    /// # Panics
    ///
    /// The `i32` implementation panics on floating-point formats; kernels
    /// validate `format.is_integer()` before constructing integer LUTs.
    fn decode(format: NumericFormat, code: u32) -> Self;

    /// Multiplication.
    #[must_use]
    fn mul(self, rhs: Self) -> Self;

    /// Approximate equality (exact for integers, relative-epsilon for
    /// floats) — used by tests and the float-accuracy experiments.
    fn approx_eq(self, rhs: Self) -> bool;
}

impl LutValue for i32 {
    fn decode(format: NumericFormat, code: u32) -> Self {
        format
            .decode_int(code)
            .expect("integer LUTs require an integer numeric format")
    }

    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }

    fn approx_eq(self, rhs: Self) -> bool {
        self == rhs
    }
}

impl LutValue for f32 {
    fn decode(format: NumericFormat, code: u32) -> Self {
        format.decode_f32(code)
    }

    fn mul(self, rhs: Self) -> Self {
        self * rhs
    }

    fn approx_eq(self, rhs: Self) -> bool {
        let scale = self.abs().max(rhs.abs()).max(1.0);
        (self - rhs).abs() <= 1e-4 * scale
    }
}

/// Computes the inner product of weight and activation codewords decoded
/// through their formats — the ground truth every LUT entry stores.
#[must_use]
pub fn dot_codes<V: LutValue>(
    wf: NumericFormat,
    af: NumericFormat,
    w_codes: &[u16],
    a_codes: &[u16],
) -> V {
    debug_assert_eq!(w_codes.len(), a_codes.len());
    let mut acc = V::default();
    for (&w, &a) in w_codes.iter().zip(a_codes) {
        acc += V::decode(wf, u32::from(w)).mul(V::decode(af, u32::from(a)));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i32_decode_and_dot() {
        let wf = NumericFormat::Bipolar;
        let af = NumericFormat::Int(3);
        // Fig. 2-style example: w = [-1, -1, 1] (codes 0,0,1),
        // a = [3, 0, 2] → -3 + 0 + 2 = -1.
        let d: i32 = dot_codes(wf, af, &[0, 0, 1], &[3, 0, 2]);
        assert_eq!(d, -1);
    }

    #[test]
    fn f32_decode_and_dot() {
        let wf = NumericFormat::Fp4;
        let af = NumericFormat::Fp4;
        // 1.0 * 2.0 + 0.5 * 6.0 = 5.0 (codes: 1.0=2, 2.0=4, 0.5=1, 6.0=7).
        let d: f32 = dot_codes(wf, af, &[2, 1], &[4, 7]);
        assert!(d.approx_eq(5.0));
    }

    #[test]
    #[should_panic(expected = "integer LUTs require an integer numeric format")]
    fn i32_decode_panics_on_float_format() {
        let _ = <i32 as LutValue>::decode(NumericFormat::Fp4, 0);
    }

    #[test]
    fn approx_eq_semantics() {
        assert!(3i32.approx_eq(3));
        assert!(!3i32.approx_eq(4));
        assert!(1.0f32.approx_eq(1.0 + 1e-6));
        assert!(!1.0f32.approx_eq(1.1));
    }
}
