//! Elementwise operation-packed LUTs (§VII-A): "LUTs' reconfigurability
//! allows supporting other operations (e.g., bitwise xor), provided they
//! fit within the LUT capacity budget."
//!
//! An elementwise LUT packs `p` independent applications of an arbitrary
//! binary code-level operator `f: code × code → code` into one lookup: the
//! table is indexed by two packed operand vectors and each entry is the
//! packed result vector. Unlike inner-product LUTs there is no reduction,
//! so canonicalization does not apply — but the capacity-for-computation
//! tradeoff (and the buffer/bank placement question) is identical, which is
//! why this lives beside the GEMM machinery.

use crate::packed::{check_index_width, pack_index, unpack_index};
use crate::LocaLutError;

/// A packed LUT for an arbitrary elementwise binary operation on codes.
///
/// # Examples
///
/// ```
/// use localut::elementwise::ElementwiseLut;
///
/// // Four 2-bit XORs per lookup (§VII-A's example operation).
/// let lut = ElementwiseLut::xor(2, 4, 1 << 20)?;
/// assert_eq!(lut.apply(&[0, 1, 2, 3], &[3, 3, 3, 3]), vec![3, 2, 1, 0]);
/// # Ok::<(), localut::LocaLutError>(())
/// ```
pub struct ElementwiseLut {
    bits: u8,
    p: u32,
    side: u64,
    /// `entries[b * side + a]` = packed results of `f(a_i, b_i)`.
    entries: Vec<u64>,
    name: &'static str,
}

impl core::fmt::Debug for ElementwiseLut {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ElementwiseLut")
            .field("name", &self.name)
            .field("bits", &self.bits)
            .field("p", &self.p)
            .field("entries", &self.entries.len())
            .finish()
    }
}

impl ElementwiseLut {
    /// Precomputes the LUT for `op` over `bits`-wide codes at packing
    /// degree `p`.
    ///
    /// `op` must map valid codes to valid codes (`< 2^bits`); results are
    /// masked to the code width defensively.
    ///
    /// # Errors
    ///
    /// * [`LocaLutError::IndexSpaceTooWide`] when `2 · bits · p > 26` (the
    ///   table has `2^(2·bits·p)` entries — elementwise packing explodes
    ///   twice as fast as inner products, §III-A's tradeoff in its
    ///   harshest form).
    /// * [`LocaLutError::BudgetExceeded`] when the entry count exceeds
    ///   `max_entries`.
    pub fn build(
        name: &'static str,
        bits: u8,
        p: u32,
        max_entries: u64,
        mut op: impl FnMut(u16, u16) -> u16,
    ) -> Result<Self, LocaLutError> {
        check_index_width(bits, p)?;
        if 2 * u32::from(bits) * p > 26 {
            return Err(LocaLutError::IndexSpaceTooWide { bits, p });
        }
        let side = 1u64 << (u32::from(bits) * p);
        let total = (side as u128) * (side as u128);
        if total > u128::from(max_entries) {
            return Err(LocaLutError::BudgetExceeded {
                required: total,
                budget: max_entries,
            });
        }
        let mask = (1u16 << bits) - 1;
        let mut entries = Vec::with_capacity(total as usize);
        for b in 0..side {
            let bcodes = unpack_index(b, bits, p);
            for a in 0..side {
                let acodes = unpack_index(a, bits, p);
                let result: Vec<u16> = acodes
                    .iter()
                    .zip(&bcodes)
                    .map(|(&x, &y)| op(x, y) & mask)
                    .collect();
                entries.push(pack_index(&result, bits));
            }
        }
        Ok(ElementwiseLut {
            bits,
            p,
            side,
            entries,
            name,
        })
    }

    /// A packed bitwise-XOR LUT (the §VII-A example).
    ///
    /// # Errors
    ///
    /// See [`ElementwiseLut::build`].
    pub fn xor(bits: u8, p: u32, max_entries: u64) -> Result<Self, LocaLutError> {
        Self::build("xor", bits, p, max_entries, |a, b| a ^ b)
    }

    /// A packed saturating-add LUT.
    ///
    /// # Errors
    ///
    /// See [`ElementwiseLut::build`].
    pub fn saturating_add(bits: u8, p: u32, max_entries: u64) -> Result<Self, LocaLutError> {
        let max = (1u16 << bits) - 1;
        Self::build("saturating-add", bits, p, max_entries, move |a, b| {
            (a + b).min(max)
        })
    }

    /// The operation's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The packing degree.
    #[must_use]
    pub fn p(&self) -> u32 {
        self.p
    }

    /// Entry count, `2^(2·bits·p)`.
    #[must_use]
    pub fn entry_count(&self) -> u64 {
        self.side * self.side
    }

    /// One lookup: `p` elementwise operations at once, on packed indices.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    #[must_use]
    pub fn lookup(&self, a: u64, b: u64) -> u64 {
        assert!(
            a < self.side && b < self.side,
            "elementwise LUT index out of range"
        );
        self.entries[(b * self.side + a) as usize]
    }

    /// Applies the packed operation to two equal-length code slices,
    /// chunking by `p` (the tail uses a partial pack, which is safe because
    /// missing lanes are zero-filled on both operands).
    ///
    /// # Panics
    ///
    /// Panics when the slices' lengths differ or a code exceeds the width.
    #[must_use]
    pub fn apply(&self, a: &[u16], b: &[u16]) -> Vec<u16> {
        assert_eq!(a.len(), b.len(), "operand length mismatch");
        let p = self.p as usize;
        let mut out = Vec::with_capacity(a.len());
        for (ca, cb) in a.chunks(p).zip(b.chunks(p)) {
            let packed = self.lookup(pack_index(ca, self.bits), pack_index(cb, self.bits));
            out.extend(unpack_index(packed, self.bits, ca.len() as u32));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_lut_is_exact_exhaustively() {
        let lut = ElementwiseLut::xor(2, 2, 1 << 16).unwrap();
        for a in 0..4u16 {
            for b in 0..4u16 {
                for c in 0..4u16 {
                    for d in 0..4u16 {
                        let out = lut.apply(&[a, b], &[c, d]);
                        assert_eq!(out, vec![a ^ c, b ^ d]);
                    }
                }
            }
        }
    }

    #[test]
    fn saturating_add_saturates() {
        let lut = ElementwiseLut::saturating_add(3, 2, 1 << 16).unwrap();
        assert_eq!(lut.apply(&[7, 3], &[7, 2]), vec![7, 5]);
        assert_eq!(lut.apply(&[0, 0], &[0, 7]), vec![0, 7]);
    }

    #[test]
    fn ragged_tail_is_handled() {
        let lut = ElementwiseLut::xor(2, 3, 1 << 16).unwrap();
        let a = [1u16, 2, 3, 0, 1];
        let b = [3u16, 3, 3, 3, 3];
        let expect: Vec<u16> = a.iter().zip(&b).map(|(x, y)| x ^ y).collect();
        assert_eq!(lut.apply(&a, &b), expect);
    }

    #[test]
    fn capacity_guards() {
        // 2*3*5 = 30 bits of index -> over the 26-bit elementwise cap.
        assert!(matches!(
            ElementwiseLut::xor(3, 5, u64::MAX),
            Err(LocaLutError::IndexSpaceTooWide { .. })
        ));
        assert!(matches!(
            ElementwiseLut::xor(2, 2, 10),
            Err(LocaLutError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn entry_count_formula() {
        let lut = ElementwiseLut::xor(1, 4, 1 << 16).unwrap();
        assert_eq!(lut.entry_count(), 256); // (2^4)^2
        assert_eq!(lut.name(), "xor");
        assert_eq!(lut.p(), 4);
    }
}
