//! Bank-level parallelization (§V-B): tiling a GEMM across the 2048 DPUs
//! with data/context parallelism, plus the host-side phases (quantization,
//! sorting/packing, transfers) that wrap every PIM kernel launch.

use crate::gemm::{GemmConfig, GemmDims, Method};
use crate::LocaLutError;
use pim_sim::{Category, CycleLedger, PimSystem, Profile, SystemProfile};
use quant::NumericFormat;

/// How a GEMM is split across DPUs: a `grid_m × grid_n` grid of output
/// tiles, each owned by one DPU. Weights are partitioned along `M`,
/// activations along `N`; LUT images are replicated (broadcast once at
/// initialization, §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    /// Tiles along the M (weight-row) dimension.
    pub grid_m: u32,
    /// Tiles along the N (activation-column) dimension.
    pub grid_n: u32,
}

impl TileGrid {
    /// Chooses a grid for `dims` over `n_dpus`: N splits first (pure data
    /// parallelism over activation columns), then M (context parallelism)
    /// until the DPUs are covered or the matrix runs out of rows.
    #[must_use]
    pub fn choose(dims: GemmDims, n_dpus: u32) -> Self {
        let grid_n = u32::try_from(dims.n).unwrap_or(u32::MAX).min(n_dpus).max(1);
        let remaining = (n_dpus / grid_n).max(1);
        let grid_m = u32::try_from(dims.m)
            .unwrap_or(u32::MAX)
            .min(remaining)
            .max(1);
        TileGrid { grid_m, grid_n }
    }

    /// Number of DPUs the grid occupies.
    #[must_use]
    pub fn dpus_used(&self) -> u32 {
        self.grid_m * self.grid_n
    }

    /// Per-DPU tile dimensions (ceiling division; edge tiles are smaller,
    /// the representative tile bounds the critical path).
    #[must_use]
    pub fn tile_dims(&self, dims: GemmDims) -> GemmDims {
        GemmDims {
            m: dims.m.div_ceil(self.grid_m as usize),
            k: dims.k,
            n: dims.n.div_ceil(self.grid_n as usize),
        }
    }

    /// Enumerates the grid's non-empty output cells in row-major order as
    /// `(weight_rows, activation_cols)` ranges over the full matrices —
    /// the concrete shard list a bank-parallel runtime executes.
    ///
    /// Edge cells are clipped to the matrix, and cells that would fall
    /// entirely past it (possible when the ceiling-divided tile size
    /// over-covers) are skipped, so the returned cells exactly partition
    /// the `M×N` output.
    ///
    /// # Examples
    ///
    /// ```
    /// use localut::tiling::TileGrid;
    /// use localut::GemmDims;
    ///
    /// let dims = GemmDims { m: 5, k: 8, n: 3 };
    /// let grid = TileGrid { grid_m: 2, grid_n: 2 };
    /// let cells = grid.cell_ranges(dims);
    /// assert_eq!(cells, vec![
    ///     (0..3, 0..2), (0..3, 2..3),
    ///     (3..5, 0..2), (3..5, 2..3),
    /// ]);
    /// ```
    #[must_use]
    pub fn cell_ranges(
        &self,
        dims: GemmDims,
    ) -> Vec<(core::ops::Range<usize>, core::ops::Range<usize>)> {
        let tile = self.tile_dims(dims);
        let mut cells = Vec::new();
        let mut r0 = 0;
        while r0 < dims.m {
            let r1 = dims.m.min(r0 + tile.m);
            let mut c0 = 0;
            while c0 < dims.n {
                let c1 = dims.n.min(c0 + tile.n);
                cells.push((r0..r1, c0..c1));
                c0 = c1;
            }
            r0 = r1;
        }
        cells
    }
}

/// A GEMM distributed over the whole PIM system.
#[derive(Debug, Clone)]
pub struct DistributedGemm {
    /// The system topology and host link model.
    pub system: PimSystem,
    /// Per-DPU kernel configuration.
    pub gemm: GemmConfig,
}

impl DistributedGemm {
    /// The paper's 2048-DPU UPMEM server with default kernel config.
    #[must_use]
    pub fn upmem_server() -> Self {
        DistributedGemm {
            system: PimSystem::upmem_server(),
            gemm: GemmConfig::upmem(),
        }
    }

    /// Whether a method requires host-side activation sorting/packing.
    fn needs_sorting(method: Method) -> bool {
        matches!(method, Method::OpLc | Method::OpLcRc | Method::LoCaLut)
    }

    /// Whether a method requires host-side activation packing (indices).
    fn needs_packing(method: Method) -> bool {
        !matches!(method, Method::NaivePim | Method::Ltc)
    }

    /// End-to-end system cost of one distributed GEMM: host quantization,
    /// sorting/packing, scatter, the per-DPU kernel (critical path), and
    /// the output gather.
    ///
    /// # Errors
    ///
    /// Kernel feasibility errors.
    pub fn cost(
        &self,
        method: Method,
        dims: GemmDims,
        wf: NumericFormat,
        af: NumericFormat,
    ) -> Result<SystemProfile, LocaLutError> {
        self.cost_inner(method, dims, wf, af, false)
    }

    /// Like [`DistributedGemm::cost`], but the per-DPU LoCaLUT kernel is
    /// planned by measured cost at the *tile* dimensions
    /// ([`GemmConfig::cost_measured`]) — the decode-phase path, where the
    /// tile is skinny and the closed-form planner's `n`-cancellation no
    /// longer reflects the kernel's real weight-streaming cost. The host
    /// phases (quantization, sorting/packing, transfers) are identical to
    /// [`DistributedGemm::cost`].
    ///
    /// # Errors
    ///
    /// Kernel feasibility errors.
    pub fn cost_measured(
        &self,
        method: Method,
        dims: GemmDims,
        wf: NumericFormat,
        af: NumericFormat,
    ) -> Result<SystemProfile, LocaLutError> {
        self.cost_inner(method, dims, wf, af, true)
    }

    fn cost_inner(
        &self,
        method: Method,
        dims: GemmDims,
        wf: NumericFormat,
        af: NumericFormat,
        measured: bool,
    ) -> Result<SystemProfile, LocaLutError> {
        let grid = TileGrid::choose(dims, self.system.config().n_dpus());
        let tile = grid.tile_dims(dims);
        let pim = if measured {
            self.gemm.cost_measured(method, tile, wf, af)?
        } else {
            self.gemm.cost(method, tile, wf, af)?
        };

        let mut host = CycleLedger::new();
        let elems = dims.k as u64 * dims.n as u64;
        // Quantization: ~2 host ops per activation element (scale + round).
        let quant_ops = 2 * elems;
        host.charge(
            Category::HostQuantize,
            self.system.host_ops_seconds(quant_ops),
        );
        // Sorting/packing: ~3 ops per element for sort-based methods
        // (p-element sorts are ~log2(p) comparisons per element), ~1 for
        // pure packing.
        let sort_ops = if Self::needs_sorting(method) {
            3 * elems
        } else if Self::needs_packing(method) {
            elems
        } else {
            0
        };
        host.charge(
            Category::HostSortPack,
            self.system.host_ops_seconds(sort_ops),
        );
        // Activation scatter: N-tiles go out once (same-column DPUs across
        // the grid_m row-groups receive them by rank-level broadcast);
        // sorting methods additionally ship one 2-byte permutation id per
        // p-element group (~half a byte per element at typical p ≥ 4).
        let mut scatter_bytes = dims.activation_bytes(af.bits());
        if Self::needs_sorting(method) {
            scatter_bytes += elems / 2;
        }
        let gather_bytes = dims.output_bytes();
        host.charge(
            Category::HostTransfer,
            self.system.scatter_seconds(scatter_bytes) + self.system.gather_seconds(gather_bytes),
        );
        host.host_bytes = scatter_bytes + gather_bytes;
        host.host_ops = quant_ops + sort_ops;

        Ok(SystemProfile {
            host: Profile::from_ledger(host),
            pim,
        })
    }

    /// System speedup of `method` over `baseline` for one GEMM.
    ///
    /// # Errors
    ///
    /// Kernel feasibility errors.
    pub fn speedup_over(
        &self,
        method: Method,
        baseline: Method,
        dims: GemmDims,
        wf: NumericFormat,
        af: NumericFormat,
    ) -> Result<f64, LocaLutError> {
        let a = self.cost(method, dims, wf, af)?.total_seconds();
        let b = self.cost(baseline, dims, wf, af)?.total_seconds();
        Ok(b / a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W1: NumericFormat = NumericFormat::Bipolar;
    const A3: NumericFormat = NumericFormat::Int(3);

    #[test]
    fn grid_splits_n_then_m() {
        let g = TileGrid::choose(
            GemmDims {
                m: 768,
                k: 768,
                n: 128,
            },
            2048,
        );
        assert_eq!(g.grid_n, 128);
        assert_eq!(g.grid_m, 16);
        assert_eq!(g.dpus_used(), 2048);
        let tile = g.tile_dims(GemmDims {
            m: 768,
            k: 768,
            n: 128,
        });
        assert_eq!((tile.m, tile.k, tile.n), (48, 768, 1));
    }

    #[test]
    fn grid_handles_small_matrices() {
        let g = TileGrid::choose(GemmDims { m: 4, k: 16, n: 2 }, 2048);
        assert_eq!(g.grid_n, 2);
        assert_eq!(g.grid_m, 4);
        let tile = g.tile_dims(GemmDims { m: 4, k: 16, n: 2 });
        assert_eq!((tile.m, tile.n), (1, 1));
    }

    #[test]
    fn distributed_cost_has_host_and_pim_phases() {
        let d = DistributedGemm::upmem_server();
        let sp = d
            .cost(
                Method::LoCaLut,
                GemmDims {
                    m: 768,
                    k: 768,
                    n: 128,
                },
                W1,
                A3,
            )
            .unwrap();
        assert!(sp.pim.total_seconds() > 0.0);
        assert!(sp.host.seconds(Category::HostQuantize) > 0.0);
        assert!(sp.host.seconds(Category::HostSortPack) > 0.0);
        assert!(sp.host.seconds(Category::HostTransfer) > 0.0);
    }

    #[test]
    fn naive_has_no_sorting_phase() {
        let d = DistributedGemm::upmem_server();
        let sp = d
            .cost(
                Method::NaivePim,
                GemmDims {
                    m: 64,
                    k: 64,
                    n: 16,
                },
                W1,
                A3,
            )
            .unwrap();
        assert_eq!(sp.host.seconds(Category::HostSortPack), 0.0);
    }

    #[test]
    fn measured_cost_matches_host_phases_and_never_loses() {
        let d = DistributedGemm::upmem_server();
        // A decode-skinny GEMM: one new token over the full hidden dim.
        let dims = GemmDims {
            m: 3072,
            k: 768,
            n: 2,
        };
        let fixed = d.cost(Method::LoCaLut, dims, W1, A3).unwrap();
        let measured = d.cost_measured(Method::LoCaLut, dims, W1, A3).unwrap();
        // Host phases are planning-independent.
        for cat in [
            Category::HostQuantize,
            Category::HostSortPack,
            Category::HostTransfer,
        ] {
            assert_eq!(fixed.host.seconds(cat), measured.host.seconds(cat));
        }
        // The measured search covers the fixed plan as a candidate, so it
        // can only match or beat it.
        assert!(measured.pim.total_seconds() <= fixed.pim.total_seconds() + 1e-18);
        // Planner-free methods are unchanged by the measured path.
        let a = d.cost(Method::NaivePim, dims, W1, A3).unwrap();
        let b = d.cost_measured(Method::NaivePim, dims, W1, A3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn localut_beats_naive_on_representative_gemm() {
        // The headline claim at GEMM level (Fig. 9): LoCaLUT ≳ 2x over
        // Naive PIM at W1A3.
        let d = DistributedGemm::upmem_server();
        let s = d
            .speedup_over(
                Method::LoCaLut,
                Method::NaivePim,
                GemmDims {
                    m: 3072,
                    k: 768,
                    n: 128,
                },
                W1,
                A3,
            )
            .unwrap();
        assert!(s > 2.0, "speedup {s} too small");
    }
}
