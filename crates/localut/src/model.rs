//! The first-order performance model of §IV-D (Eq. 2–6).
//!
//! For a weight tile `W ∈ Z^{M×K}` times an activation tile `A ∈ Z^{K×N}`:
//!
//! * **Streaming** (Eq. 2):
//!   `T(p) = 2^(bw·p) · (K·N/p) · L_D  +  (M·K·N/p) · L_local`
//!   — every activation group streams its slice pair once, and every
//!   (weight row, group) pair costs one lookup composite.
//! * **Buffer-resident** (Eq. 4): `T_local = (M·K·N/p_local) · L_local`.
//! * `p*` (Eq. 3) minimizes `T(p)` over `p ≤ p_DRAM`; Eq. 5/6 decide
//!   whether streaming beats the buffer-resident LUT (large `M` favors
//!   streaming because slices are reused across more weight rows).
//!
//! The model intentionally ignores weight/activation/output movement
//! ("their contribution is marginal with respect to changes in `p`",
//! §IV-D); the kernels do charge those, which is the gap Fig. 18 shows.

use crate::gemm::GemmDims;
use pim_sim::DpuTimings;

/// The calibrated `L_D`/`L_local` model.
///
/// # Examples
///
/// ```
/// use localut::model::PerfModel;
/// use localut::GemmDims;
///
/// let model = PerfModel::upmem();
/// let dims = GemmDims { m: 3072, k: 768, n: 128 };
/// // Eq. 3: large M favors a large streaming p*.
/// let choice = model.optimal_streaming_p(dims, 1, 8).unwrap();
/// assert_eq!(choice.p, 8);
/// // Eq. 5/6: it also beats the buffer-resident p_local = 5 here.
/// assert!(choice.seconds < model.buffer_seconds(dims, 5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PerfModel {
    /// Seconds to stream one (canonical, reordering) entry pair (`L_D`).
    pub l_d: f64,
    /// Seconds per lookup composite (`L_local`).
    pub l_local: f64,
}

/// The model's placement decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelChoice {
    /// Chosen packing degree.
    pub p: u32,
    /// Whether to stream slices from the DRAM bank (vs. buffer-resident).
    pub streaming: bool,
    /// Predicted seconds.
    pub seconds: f64,
}

impl PerfModel {
    /// Model with the paper's profiled UPMEM constants (§VI-I).
    #[must_use]
    pub fn upmem() -> Self {
        let t = DpuTimings::upmem();
        PerfModel {
            l_d: t.lut_entry_pair_stream_seconds,
            l_local: t.lookup_accum_seconds,
        }
    }

    /// Number of activation groups: `ceil(K/p) · N`.
    #[must_use]
    pub fn groups(dims: GemmDims, p: u32) -> u64 {
        (dims.k as u64).div_ceil(u64::from(p)) * dims.n as u64
    }

    /// Eq. 2: predicted seconds with LUT slice streaming at degree `p`.
    #[must_use]
    pub fn streaming_seconds(&self, dims: GemmDims, bw: u8, p: u32) -> f64 {
        let groups = Self::groups(dims, p) as f64;
        let slice_entries = 2f64.powi(i32::from(bw) * p as i32);
        slice_entries * groups * self.l_d + dims.m as f64 * groups * self.l_local
    }

    /// Eq. 4: predicted seconds with a buffer-resident LUT at `p_local`.
    #[must_use]
    pub fn buffer_seconds(&self, dims: GemmDims, p_local: u32) -> f64 {
        dims.m as f64 * Self::groups(dims, p_local) as f64 * self.l_local
    }

    /// Eq. 3: the streaming-optimal `p*` over `1..=p_dram` (`None` when
    /// `p_dram == 0`).
    #[must_use]
    pub fn optimal_streaming_p(&self, dims: GemmDims, bw: u8, p_dram: u32) -> Option<ModelChoice> {
        (1..=p_dram)
            .map(|p| ModelChoice {
                p,
                streaming: true,
                seconds: self.streaming_seconds(dims, bw, p),
            })
            .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
    }

    /// The full §IV-D decision: evaluate every `p ≤ p_dram` on Eq. 2 and
    /// the buffer-resident alternative at `p_local` on Eq. 4, and pick the
    /// faster (Eq. 5/6). Returns `None` when neither placement is feasible.
    #[must_use]
    pub fn choose(&self, dims: GemmDims, bw: u8, p_dram: u32, p_local: u32) -> Option<ModelChoice> {
        let stream = self.optimal_streaming_p(dims, bw, p_dram);
        let buffer = (p_local > 0).then(|| ModelChoice {
            p: p_local,
            streaming: false,
            seconds: self.buffer_seconds(dims, p_local),
        });
        match (stream, buffer) {
            (Some(s), Some(b)) => Some(if s.seconds < b.seconds { s } else { b }),
            (s, b) => s.or(b),
        }
    }

    /// Eq. 6: the break-even `M` above which streaming at `p*` beats the
    /// buffer-resident LUT at `p_local` (for intuition/validation; `choose`
    /// compares Eq. 2 and Eq. 4 directly).
    #[must_use]
    pub fn break_even_m(&self, bw: u8, p_star: u32, p_local: u32) -> f64 {
        if p_star <= p_local {
            return f64::INFINITY;
        }
        2f64.powi(i32::from(bw) * p_star as i32) * (self.l_d / self.l_local) * f64::from(p_local)
            / f64::from(p_star - p_local)
    }
}

impl Default for PerfModel {
    fn default() -> Self {
        Self::upmem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims(m: usize, k: usize, n: usize) -> GemmDims {
        GemmDims { m, k, n }
    }

    #[test]
    fn upmem_constants() {
        let m = PerfModel::upmem();
        assert!((m.l_d - 1.36e-9).abs() < 1e-15);
        assert!((m.l_local - 3.27e-8).abs() < 1e-14);
    }

    #[test]
    fn eq2_matches_hand_computation() {
        let m = PerfModel::upmem();
        let d = dims(768, 768, 128);
        // bw=1, p=8: groups = 96 * 128 = 12288.
        let groups = 12288.0;
        let expect = 256.0 * groups * m.l_d + 768.0 * groups * m.l_local;
        assert!((m.streaming_seconds(d, 1, 8) - expect).abs() < 1e-12);
    }

    #[test]
    fn larger_m_favors_larger_p() {
        // §IV-D: "With ... large M (more slice reuse), a larger p* is
        // favored."
        let m = PerfModel::upmem();
        let small = m.optimal_streaming_p(dims(32, 768, 128), 2, 8).unwrap();
        let large = m.optimal_streaming_p(dims(8192, 768, 128), 2, 8).unwrap();
        assert!(large.p >= small.p);
        assert!(large.p > 1);
    }

    #[test]
    fn small_bw_favors_larger_p() {
        let m = PerfModel::upmem();
        let narrow = m.optimal_streaming_p(dims(768, 768, 128), 1, 8).unwrap();
        let wide = m.optimal_streaming_p(dims(768, 768, 128), 4, 8).unwrap();
        assert!(narrow.p >= wide.p);
    }

    #[test]
    fn choose_prefers_buffer_for_tiny_m() {
        // Eq. 6: small M should keep the LUT in the buffer.
        let m = PerfModel::upmem();
        let tiny = m.choose(dims(1, 768, 8), 4, 6, 2).unwrap();
        assert!(!tiny.streaming, "tiny M should stay buffer-resident");
        let big = m.choose(dims(8192, 768, 768), 1, 8, 5).unwrap();
        assert!(big.streaming, "large M should stream");
        assert!(big.p > 5);
    }

    #[test]
    fn choose_handles_missing_placements() {
        let m = PerfModel::upmem();
        assert!(m.choose(dims(8, 8, 8), 1, 0, 0).is_none());
        let only_buffer = m.choose(dims(8, 8, 8), 1, 0, 3).unwrap();
        assert!(!only_buffer.streaming);
        let only_stream = m.choose(dims(8, 8, 8), 1, 4, 0).unwrap();
        assert!(only_stream.streaming);
    }

    #[test]
    fn chosen_p_is_argmin() {
        let m = PerfModel::upmem();
        let d = dims(3072, 768, 128);
        let best = m.optimal_streaming_p(d, 2, 8).unwrap();
        for p in 1..=8 {
            assert!(m.streaming_seconds(d, 2, p) >= best.seconds - 1e-15);
        }
    }

    #[test]
    fn break_even_m_monotonic_in_bw() {
        // §IV-D: break-even M increases with larger bw.
        let m = PerfModel::upmem();
        assert!(m.break_even_m(2, 6, 3) > m.break_even_m(1, 6, 3));
        assert_eq!(m.break_even_m(1, 3, 5), f64::INFINITY);
    }

    #[test]
    fn break_even_consistent_with_direct_comparison() {
        let m = PerfModel::upmem();
        let bw = 2u8;
        let (p_star, p_local) = (6u32, 3u32);
        let threshold = m.break_even_m(bw, p_star, p_local);
        // Just above the threshold streaming must win; just below it the
        // buffer must win (with K divisible by both p to match Eq. 2's
        // continuous form).
        let k = 768;
        let n = 128;
        let above = dims((threshold * 1.3) as usize, k, n);
        let below = dims((threshold * 0.7) as usize, k, n);
        assert!(m.streaming_seconds(above, bw, p_star) < m.buffer_seconds(above, p_local));
        assert!(m.streaming_seconds(below, bw, p_star) > m.buffer_seconds(below, p_local));
    }
}
