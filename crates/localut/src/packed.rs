//! Operation-packed LUTs (§III-A): one lookup yields the inner product of
//! `p` weight/activation pairs.
//!
//! The LUT is indexed by a *packed weight row* (the `p` weight codes as
//! radix-`2^bw` digits) and a *packed activation column* (the `p`
//! activation codes as radix-`2^ba` digits), so it has
//! `2^(bw·p) × 2^(ba·p)` entries — the exponential growth that motivates
//! canonicalization. Entries are stored column-major so that a fixed
//! activation vector's slice is contiguous.

use crate::value::{dot_codes, LutValue};
use crate::LocaLutError;
use quant::NumericFormat;

/// Packs `p` codes into a dense radix-`2^bits` index:
/// `Σ codes[i] << (bits · i)`.
///
/// # Panics
///
/// Debug-panics when a code exceeds `bits` or the packed width exceeds 48
/// bits (callers validate via [`check_index_width`]).
#[must_use]
pub fn pack_index(codes: &[u16], bits: u8) -> u64 {
    debug_assert!(u32::from(bits) * codes.len() as u32 <= 48);
    let mut idx = 0u64;
    for (i, &c) in codes.iter().enumerate() {
        debug_assert!(u32::from(c) < (1u32 << bits), "code exceeds bit width");
        idx |= u64::from(c) << (usize::from(bits) * i);
    }
    idx
}

/// Inverse of [`pack_index`].
#[must_use]
pub fn unpack_index(idx: u64, bits: u8, p: u32) -> Vec<u16> {
    let mask = (1u64 << bits) - 1;
    (0..p)
        .map(|i| ((idx >> (u32::from(bits) * i)) & mask) as u16)
        .collect()
}

/// Validates that a `bits × p` packed index fits the implementation's
/// 48-bit index space.
///
/// # Errors
///
/// [`LocaLutError::IndexSpaceTooWide`] otherwise.
pub fn check_index_width(bits: u8, p: u32) -> Result<(), LocaLutError> {
    if p == 0 {
        return Err(LocaLutError::InvalidPackingDegree(p));
    }
    if u32::from(bits) * p > 48 {
        return Err(LocaLutError::IndexSpaceTooWide { bits, p });
    }
    Ok(())
}

/// A fully materialized operation-packed LUT.
#[derive(Debug, Clone, PartialEq)]
pub struct OpPackedLut<V> {
    wf: NumericFormat,
    af: NumericFormat,
    p: u32,
    rows: u64,
    cols: u64,
    /// Column-major entries: `entries[col * rows + row]`.
    entries: Vec<V>,
}

impl<V: LutValue> OpPackedLut<V> {
    /// Precomputes the LUT for the given formats and packing degree.
    ///
    /// # Errors
    ///
    /// * [`LocaLutError::IndexSpaceTooWide`] when a packed index exceeds 48
    ///   bits.
    /// * [`LocaLutError::BudgetExceeded`] when the entry count exceeds
    ///   `max_entries` (a guard against accidentally materializing the
    ///   exponential table; capacity *accounting* lives in
    ///   [`crate::capacity`]).
    pub fn build(
        wf: NumericFormat,
        af: NumericFormat,
        p: u32,
        max_entries: u64,
    ) -> Result<Self, LocaLutError> {
        check_index_width(wf.bits(), p)?;
        check_index_width(af.bits(), p)?;
        let rows = 1u64 << (u32::from(wf.bits()) * p);
        let cols = 1u64 << (u32::from(af.bits()) * p);
        let total = u128::from(rows) * u128::from(cols);
        if total > u128::from(max_entries) {
            return Err(LocaLutError::BudgetExceeded {
                required: total,
                budget: max_entries,
            });
        }
        let mut entries = Vec::with_capacity(total as usize);
        for col in 0..cols {
            let a_codes = unpack_index(col, af.bits(), p);
            for row in 0..rows {
                let w_codes = unpack_index(row, wf.bits(), p);
                entries.push(dot_codes(wf, af, &w_codes, &a_codes));
            }
        }
        Ok(OpPackedLut {
            wf,
            af,
            p,
            rows,
            cols,
            entries,
        })
    }

    /// The packing degree.
    #[must_use]
    pub fn p(&self) -> u32 {
        self.p
    }

    /// Number of weight rows, `2^(bw·p)`.
    #[must_use]
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of activation columns, `2^(ba·p)`.
    #[must_use]
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Total entry count.
    #[must_use]
    pub fn entry_count(&self) -> u64 {
        self.rows * self.cols
    }

    /// Weight format.
    #[must_use]
    pub fn weight_format(&self) -> NumericFormat {
        self.wf
    }

    /// Activation format.
    #[must_use]
    pub fn activation_format(&self) -> NumericFormat {
        self.af
    }

    /// Looks up the packed inner product for a packed weight row and packed
    /// activation column.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    #[must_use]
    pub fn lookup(&self, row: u64, col: u64) -> V {
        assert!(row < self.rows && col < self.cols, "LUT index out of range");
        self.entries[(col * self.rows + row) as usize]
    }

    /// One activation column as a contiguous slice, indexed by packed
    /// weight row — the blocked OP loop hoists this per tile column so the
    /// M-pass does a single bounds-checked slice index per lookup.
    ///
    /// # Panics
    ///
    /// Panics when `col` is out of range.
    #[must_use]
    pub fn column_slice(&self, col: u64) -> &[V] {
        assert!(col < self.cols, "LUT column out of range");
        let base = (col * self.rows) as usize;
        &self.entries[base..base + self.rows as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let codes = vec![3u16, 0, 7, 5];
        let idx = pack_index(&codes, 3);
        assert_eq!(unpack_index(idx, 3, 4), codes);
        assert_eq!(pack_index(&[1, 1, 1], 1), 0b111);
        assert_eq!(pack_index(&[1, 0, 0], 1), 0b001);
    }

    #[test]
    fn check_index_width_limits() {
        assert!(check_index_width(3, 16).is_ok()); // 48 bits
        assert!(check_index_width(3, 17).is_err());
        assert!(check_index_width(16, 4).is_err()); // 64 > 48
        assert!(check_index_width(1, 0).is_err());
    }

    #[test]
    fn paper_fig2_example() {
        // Fig. 2: p=3, 1-bit weights {0,1}-style (we model W1 as bipolar;
        // use Uint(1) here to match the figure's literal values), 3-bit
        // activations. w=[0,0,1], a=[3,0,2] → 0·3 + 0·0 + 1·2 = 2.
        let lut =
            OpPackedLut::<i32>::build(NumericFormat::Uint(1), NumericFormat::Int(3), 3, 1 << 20)
                .unwrap();
        assert_eq!(lut.rows(), 8);
        assert_eq!(lut.cols(), 512);
        let row = pack_index(&[0, 0, 1], 1);
        let col = pack_index(&[3, 0, 2], 3);
        assert_eq!(lut.lookup(row, col), 2);
    }

    #[test]
    fn every_entry_matches_direct_dot() {
        let wf = NumericFormat::Int(2);
        let af = NumericFormat::Int(2);
        let lut = OpPackedLut::<i32>::build(wf, af, 2, 1 << 20).unwrap();
        for row in 0..lut.rows() {
            for col in 0..lut.cols() {
                let w = unpack_index(row, 2, 2);
                let a = unpack_index(col, 2, 2);
                let expect: i32 = dot_codes(wf, af, &w, &a);
                assert_eq!(lut.lookup(row, col), expect);
            }
        }
    }

    #[test]
    fn budget_guard_prevents_explosion() {
        let err = OpPackedLut::<i32>::build(NumericFormat::Int(4), NumericFormat::Int(4), 4, 1024)
            .unwrap_err();
        assert!(matches!(err, LocaLutError::BudgetExceeded { .. }));
    }

    #[test]
    fn float_lut_entries() {
        let lut =
            OpPackedLut::<f32>::build(NumericFormat::Fp4, NumericFormat::Fp4, 1, 1 << 12).unwrap();
        // code 7 = 6.0, code 5 = 3.0 → 18.0
        assert!(lut.lookup(7, 5).approx_eq(18.0));
    }

    #[test]
    #[should_panic(expected = "LUT index out of range")]
    fn lookup_out_of_range_panics() {
        let lut = OpPackedLut::<i32>::build(NumericFormat::Bipolar, NumericFormat::Int(2), 1, 64)
            .unwrap();
        let _ = lut.lookup(2, 0);
    }
}
