//! Energy model: turns a [`Profile`]'s event counters and elapsed time into
//! Joules (Fig. 14, Fig. 17b).
//!
//! Energy has a static part (DPUs and host draw power for the whole
//! execution) and a dynamic part (per-event energies for DRAM, WRAM,
//! instructions, and host-link transfers). The constants are representative
//! published figures for DDR4-process DRAM and a server Xeon; the paper does
//! not disclose its meter, so absolute Joules are indicative while the
//! *ratios* between methods — which derive from time and event counts — are
//! the reproduction target.

use crate::stats::Profile;
use crate::system::{SystemConfig, SystemProfile};

/// Per-event and static energy constants.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// DRAM bank access energy per byte (activation + column access),
    /// in Joules/byte. ~40 pJ/B is representative for DDR4-class arrays.
    pub dram_j_per_byte: f64,
    /// WRAM (SRAM) access energy per word access, in Joules.
    pub wram_j_per_access: f64,
    /// Energy per retired DPU instruction, in Joules.
    pub instr_j: f64,
    /// Host-link transfer energy per byte (channel I/O), in Joules/byte.
    pub link_j_per_byte: f64,
    /// Energy per host scalar op, in Joules (includes core overheads).
    pub host_op_j: f64,
    /// Static power of one DPU (bank + core + WRAM idle/active average), W.
    pub dpu_static_w: f64,
    /// Static power of the host CPU, W.
    pub host_static_w: f64,
}

impl EnergyModel {
    /// Representative constants for the UPMEM server.
    #[must_use]
    pub fn upmem() -> Self {
        EnergyModel {
            dram_j_per_byte: 40.0e-12,
            wram_j_per_access: 1.0e-12,
            instr_j: 12.0e-12,
            link_j_per_byte: 20.0e-12,
            host_op_j: 250.0e-12,
            // 14 W per PIM DIMM / 128 DPUs ≈ 0.11 W per DPU.
            dpu_static_w: 0.11,
            // Xeon Gold 5215 TDP.
            host_static_w: 85.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::upmem()
    }
}

/// Energy broken into static and dynamic components, in Joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Static (power × time) energy of the DPU fleet.
    pub pim_static_j: f64,
    /// Dynamic energy of DRAM/WRAM/instruction events on the DPUs.
    pub pim_dynamic_j: f64,
    /// Static host energy.
    pub host_static_j: f64,
    /// Dynamic host energy (link transfers + host ops).
    pub host_dynamic_j: f64,
}

impl EnergyBreakdown {
    /// Total Joules.
    #[must_use]
    pub fn total_j(&self) -> f64 {
        self.pim_static_j + self.pim_dynamic_j + self.host_static_j + self.host_dynamic_j
    }
}

impl EnergyModel {
    /// Dynamic energy of one DPU's profile, in Joules.
    #[must_use]
    pub fn dpu_dynamic_j(&self, profile: &Profile) -> f64 {
        let l = profile.ledger();
        (l.dram_read_bytes + l.dram_write_bytes) as f64 * self.dram_j_per_byte
            + l.wram_accesses as f64 * self.wram_j_per_access
            + l.instructions as f64 * self.instr_j
    }

    /// Dynamic energy of the host side of a profile, in Joules.
    #[must_use]
    pub fn host_dynamic_j(&self, profile: &Profile) -> f64 {
        let l = profile.ledger();
        l.host_bytes as f64 * self.link_j_per_byte + l.host_ops as f64 * self.host_op_j
    }

    /// Energy of a system execution where every DPU ran the representative
    /// per-DPU profile (`system.pim`) and the host ran `system.host`.
    #[must_use]
    pub fn system_energy(&self, sys: &SystemConfig, profile: &SystemProfile) -> EnergyBreakdown {
        let n_dpus = f64::from(sys.n_dpus());
        let total_seconds = profile.total_seconds();
        EnergyBreakdown {
            pim_static_j: n_dpus * self.dpu_static_w * total_seconds,
            pim_dynamic_j: n_dpus * self.dpu_dynamic_j(&profile.pim),
            host_static_j: self.host_static_w * total_seconds,
            host_dynamic_j: self.host_dynamic_j(&profile.host),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{Category, CycleLedger};

    fn profile_with(dram: u64, wram: u64, instr: u64, secs: f64) -> Profile {
        let mut l = CycleLedger::new();
        l.charge(Category::Compute, secs);
        l.dram_read_bytes = dram;
        l.wram_accesses = wram;
        l.instructions = instr;
        Profile::from_ledger(l)
    }

    #[test]
    fn dynamic_energy_counts_events() {
        let m = EnergyModel::upmem();
        let p = profile_with(1000, 500, 2000, 0.0);
        let e = m.dpu_dynamic_j(&p);
        let expected =
            1000.0 * m.dram_j_per_byte + 500.0 * m.wram_j_per_access + 2000.0 * m.instr_j;
        assert!((e - expected).abs() < 1e-18);
    }

    #[test]
    fn host_dynamic_energy() {
        let m = EnergyModel::upmem();
        let mut l = CycleLedger::new();
        l.host_bytes = 1_000_000;
        l.host_ops = 10_000;
        let p = Profile::from_ledger(l);
        let e = m.host_dynamic_j(&p);
        assert!((e - (1e6 * m.link_j_per_byte + 1e4 * m.host_op_j)).abs() < 1e-15);
    }

    #[test]
    fn static_energy_scales_with_time_and_dpus() {
        let m = EnergyModel::upmem();
        let sys = SystemConfig::upmem_server();
        let sp = SystemProfile {
            host: Profile::new(),
            pim: profile_with(0, 0, 0, 2.0),
        };
        let e = m.system_energy(&sys, &sp);
        assert!((e.pim_static_j - 2048.0 * m.dpu_static_w * 2.0).abs() < 1e-9);
        assert!((e.host_static_j - 85.0 * 2.0).abs() < 1e-9);
        assert!(e.total_j() > e.pim_static_j);
    }

    #[test]
    fn faster_method_with_same_events_uses_less_energy() {
        let m = EnergyModel::upmem();
        let sys = SystemConfig::upmem_server();
        let slow = SystemProfile {
            host: Profile::new(),
            pim: profile_with(100, 100, 100, 10.0),
        };
        let fast = SystemProfile {
            host: Profile::new(),
            pim: profile_with(100, 100, 100, 1.0),
        };
        assert!(m.system_energy(&sys, &fast).total_j() < m.system_energy(&sys, &slow).total_j());
    }
}
