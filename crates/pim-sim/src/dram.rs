//! DRAM bank model: capacity accounting, a row-buffer locality model, and
//! streaming transfer costs.
//!
//! A near-bank DPU owns one 64 MB DRAM bank (§II-A). The bank serves two
//! roles in LoCaLUT:
//!
//! 1. **Capacity**: DRAM-resident LUTs, weight/activation/output tiles.
//!    [`DramBank::place`] reserves capacity and fails when the bank is full —
//!    this is how `p_DRAM` (the largest packing degree whose LUT fits in
//!    roughly half the bank, §V-A) becomes a hard constraint.
//! 2. **Bandwidth**: streaming reads/writes through the DMA engine at
//!    0.5 B/cycle, with a row-activation charge when a transfer crosses DRAM
//!    rows.

use crate::timing::DpuTimings;
use crate::SimError;

/// One DRAM bank attached to a DPU.
#[derive(Debug, Clone)]
pub struct DramBank {
    capacity: u64,
    allocated: u64,
    open_row: Option<u64>,
    row_activations: u64,
    timings: DpuTimings,
}

/// A named reservation of DRAM bank capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankRegion {
    /// Debug name of the region ("canonical-lut", "weights", ...).
    pub name: String,
    /// Byte offset within the bank.
    pub offset: u64,
    /// Size in bytes.
    pub bytes: u64,
}

impl DramBank {
    /// Creates a bank with the given capacity in bytes.
    #[must_use]
    pub fn new(capacity: u64, timings: DpuTimings) -> Self {
        DramBank {
            capacity,
            allocated: 0,
            open_row: None,
            row_activations: 0,
            timings,
        }
    }

    /// A 64 MB UPMEM bank.
    #[must_use]
    pub fn upmem() -> Self {
        Self::new(64 * 1024 * 1024, DpuTimings::upmem())
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved.
    #[must_use]
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Bytes still available.
    #[must_use]
    pub fn available(&self) -> u64 {
        self.capacity - self.allocated
    }

    /// Reserves `bytes` of bank capacity for a named region.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BankExhausted`] if the bank does not have enough
    /// free capacity.
    pub fn place(&mut self, name: &str, bytes: u64) -> Result<BankRegion, SimError> {
        if bytes > self.available() {
            return Err(SimError::BankExhausted {
                requested: bytes,
                available: self.available(),
            });
        }
        let offset = self.allocated;
        self.allocated += bytes;
        Ok(BankRegion {
            name: name.to_owned(),
            offset,
            bytes,
        })
    }

    /// Releases all reservations (e.g. between layers).
    pub fn reset_allocations(&mut self) {
        self.allocated = 0;
    }

    /// Seconds to stream `bytes` starting at `offset` out of the bank,
    /// including row activations for every row the transfer touches that is
    /// not already open.
    pub fn stream_read(&mut self, offset: u64, bytes: u64) -> f64 {
        self.stream_access(offset, bytes)
    }

    /// Seconds to stream `bytes` into the bank at `offset` (writes share the
    /// read timing in this model; DRAM write recovery is folded into the
    /// per-byte rate).
    pub fn stream_write(&mut self, offset: u64, bytes: u64) -> f64 {
        self.stream_access(offset, bytes)
    }

    fn stream_access(&mut self, offset: u64, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let row_bytes = self.timings.dram_row_bytes;
        let first_row = offset / row_bytes;
        let last_row = (offset + bytes - 1) / row_bytes;
        let mut activations = 0u64;
        // Sequential streaming opens each touched row once; the first row is
        // free if it is already open.
        for row in first_row..=last_row {
            if self.open_row != Some(row) {
                activations += 1;
            }
            self.open_row = Some(row);
        }
        self.row_activations += activations;
        let act_seconds =
            activations as f64 * self.timings.row_activate_cycles * self.timings.cycle_seconds();
        self.timings.dram_stream_seconds(bytes) + act_seconds
    }

    /// Number of row activations performed so far (a locality statistic).
    #[must_use]
    pub fn row_activations(&self) -> u64 {
        self.row_activations
    }
}

impl Default for DramBank {
    fn default() -> Self {
        Self::upmem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upmem_bank_is_64mb() {
        let bank = DramBank::upmem();
        assert_eq!(bank.capacity(), 64 * 1024 * 1024);
        assert_eq!(bank.allocated(), 0);
    }

    #[test]
    fn place_reserves_and_exhausts() {
        let mut bank = DramBank::new(1000, DpuTimings::upmem());
        let a = bank.place("a", 600).unwrap();
        assert_eq!(a.offset, 0);
        assert_eq!(bank.available(), 400);
        let err = bank.place("b", 500).unwrap_err();
        assert_eq!(
            err,
            SimError::BankExhausted {
                requested: 500,
                available: 400
            }
        );
        let b = bank.place("b", 400).unwrap();
        assert_eq!(b.offset, 600);
        assert_eq!(bank.available(), 0);
    }

    #[test]
    fn reset_allocations_frees_everything() {
        let mut bank = DramBank::new(100, DpuTimings::upmem());
        bank.place("x", 100).unwrap();
        bank.reset_allocations();
        assert_eq!(bank.available(), 100);
    }

    #[test]
    fn stream_read_charges_row_activations() {
        let mut bank = DramBank::upmem();
        let t = DpuTimings::upmem();
        // Read spanning exactly 2 rows from a cold bank: 2 activations.
        let secs = bank.stream_read(0, 2 * t.dram_row_bytes);
        assert_eq!(bank.row_activations(), 2);
        let expected = t.dram_stream_seconds(2 * t.dram_row_bytes)
            + 2.0 * t.row_activate_cycles * t.cycle_seconds();
        assert!((secs - expected).abs() < 1e-15);
        // Re-reading the last row is activation-free.
        bank.stream_read(t.dram_row_bytes, 16);
        assert_eq!(bank.row_activations(), 2);
    }

    #[test]
    fn sequential_reads_reuse_open_row() {
        let mut bank = DramBank::upmem();
        bank.stream_read(0, 64);
        bank.stream_read(64, 64);
        bank.stream_read(128, 64);
        // All within the first 1 KiB row.
        assert_eq!(bank.row_activations(), 1);
    }

    #[test]
    fn zero_byte_access_is_free() {
        let mut bank = DramBank::upmem();
        assert_eq!(bank.stream_read(0, 0), 0.0);
        assert_eq!(bank.row_activations(), 0);
    }

    #[test]
    fn writes_cost_like_reads() {
        let mut a = DramBank::upmem();
        let mut b = DramBank::upmem();
        let r = a.stream_read(0, 4096);
        let w = b.stream_write(0, 4096);
        assert!((r - w).abs() < 1e-15);
    }
}
