//! Timing constants of the modelled DPU, calibrated to the paper's §VI-I.
//!
//! The paper characterises the UPMEM platform as follows:
//!
//! * DPU clock: **350 MHz**.
//! * DRAM bank → local buffer (WRAM) streaming: **0.5 B/cycle**.
//! * With the three-stage pipelined access of the DMA engine, streaming one
//!   (canonical LUT entry, reordering LUT entry) pair costs
//!   **`L_D = 1.36e-9 s`**.
//! * One canonical-LUT lookup + one reordering-LUT lookup + accumulation is
//!   **12 instructions**, i.e. **`L_local = 3.27e-8 s`**.
//!
//! `L_D` and `L_local` are *profiled composites*: the paper measures them on
//! hardware and then uses them directly in the performance model (Eq. 2).
//! We therefore expose them as first-class constants and make the granular
//! charging APIs (`instruction_seconds`, `dram_stream_seconds`) agree with
//! them, so that the analytic model and the event-driven kernels can never
//! drift apart.

/// Timing parameters of a single DPU (processing unit + bank + WRAM).
#[derive(Debug, Clone, PartialEq)]
pub struct DpuTimings {
    /// DPU core clock frequency in Hz (UPMEM: 350 MHz).
    pub clock_hz: f64,
    /// Sustained DRAM→WRAM streaming bandwidth in bytes per DPU cycle
    /// (UPMEM: 0.5 B/cycle).
    pub dram_bytes_per_cycle: f64,
    /// Fixed DMA setup cost, in cycles, charged once per streaming transfer
    /// (covers the row activation + DMA programming overhead; amortised on
    /// large transfers).
    pub dma_setup_cycles: f64,
    /// Profiled latency for streaming one (canonical, reordering) LUT entry
    /// pair from the bank into WRAM, in seconds (`L_D`, §VI-I).
    pub lut_entry_pair_stream_seconds: f64,
    /// Profiled latency for one canonical lookup + one reordering lookup +
    /// accumulation, in seconds (`L_local`, §VI-I).
    pub lookup_accum_seconds: f64,
    /// Number of instructions composing `L_local` (the paper counts 12).
    pub lookup_accum_instrs: u32,
    /// DRAM row size in bytes, used by the row-buffer model (UPMEM rows are
    /// 1 KiB per chip-level bank slice).
    pub dram_row_bytes: u64,
    /// Cycles to activate (open) a DRAM row after a precharge.
    pub row_activate_cycles: f64,
}

impl DpuTimings {
    /// Timings of an UPMEM-like DPU as profiled by the paper (§VI-I).
    #[must_use]
    pub fn upmem() -> Self {
        let clock_hz = 350.0e6;
        DpuTimings {
            clock_hz,
            dram_bytes_per_cycle: 0.5,
            dma_setup_cycles: 64.0,
            // L_D: profiled on hardware; see module docs.
            lut_entry_pair_stream_seconds: 1.36e-9,
            // L_local = 12 instructions at 350 MHz, measured as 3.27e-8 s
            // (the measured value is slightly below 12 ideal cycles due to
            // pipelining across the 11-stage DPU pipeline; we keep the
            // profiled value authoritative).
            lookup_accum_seconds: 3.27e-8,
            lookup_accum_instrs: 12,
            dram_row_bytes: 1024,
            row_activate_cycles: 16.0,
        }
    }

    /// Duration of one DPU clock cycle in seconds.
    #[must_use]
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / self.clock_hz
    }

    /// Seconds to execute `n` single-issue instructions.
    ///
    /// The composite `L_local` constant is authoritative for the 12-instruction
    /// lookup+accumulate sequence; for other instruction counts we charge the
    /// same per-instruction rate so the two views stay consistent:
    /// `rate = L_local / lookup_accum_instrs`.
    #[must_use]
    pub fn instruction_seconds(&self, n: u64) -> f64 {
        let per_instr = self.lookup_accum_seconds / f64::from(self.lookup_accum_instrs);
        per_instr * n as f64
    }

    /// Seconds to stream `bytes` between the DRAM bank and WRAM with the DMA
    /// engine (one transfer, including setup).
    #[must_use]
    pub fn dram_stream_seconds(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let cycles = self.dma_setup_cycles + bytes as f64 / self.dram_bytes_per_cycle;
        cycles * self.cycle_seconds()
    }

    /// Seconds to stream `n` (canonical, reordering) LUT entry pairs using
    /// the profiled `L_D` constant.
    #[must_use]
    pub fn lut_pair_stream_seconds(&self, n: u64) -> f64 {
        self.lut_entry_pair_stream_seconds * n as f64
    }

    /// Seconds for `n` lookup+accumulate composites using the profiled
    /// `L_local` constant.
    #[must_use]
    pub fn lookup_accum_seconds_for(&self, n: u64) -> f64 {
        self.lookup_accum_seconds * n as f64
    }
}

impl Default for DpuTimings {
    fn default() -> Self {
        Self::upmem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upmem_constants_match_paper() {
        let t = DpuTimings::upmem();
        assert!((t.clock_hz - 350.0e6).abs() < 1.0);
        assert!((t.lut_entry_pair_stream_seconds - 1.36e-9).abs() < 1e-15);
        assert!((t.lookup_accum_seconds - 3.27e-8).abs() < 1e-14);
        assert_eq!(t.lookup_accum_instrs, 12);
    }

    #[test]
    fn instruction_rate_consistent_with_l_local() {
        let t = DpuTimings::upmem();
        // 12 instructions must cost exactly L_local.
        let twelve = t.instruction_seconds(12);
        assert!((twelve - t.lookup_accum_seconds).abs() < 1e-18);
        // And it scales linearly.
        assert!((t.instruction_seconds(24) - 2.0 * twelve).abs() < 1e-18);
    }

    #[test]
    fn dram_stream_zero_bytes_is_free() {
        let t = DpuTimings::upmem();
        assert_eq!(t.dram_stream_seconds(0), 0.0);
    }

    #[test]
    fn dram_stream_includes_setup() {
        let t = DpuTimings::upmem();
        let one = t.dram_stream_seconds(1);
        // Setup dominates a 1-byte transfer.
        assert!(one > t.dma_setup_cycles * t.cycle_seconds() * 0.99);
        // Large transfers asymptote to the streaming rate.
        let big = t.dram_stream_seconds(1 << 20);
        let ideal = (1u64 << 20) as f64 / t.dram_bytes_per_cycle * t.cycle_seconds();
        assert!(big / ideal < 1.01);
    }

    #[test]
    fn lut_pair_stream_is_linear() {
        let t = DpuTimings::upmem();
        let one = t.lut_pair_stream_seconds(1);
        let thousand = t.lut_pair_stream_seconds(1000);
        assert!((thousand - 1000.0 * one).abs() < 1e-12);
    }
}
