//! WRAM: the 64 KB SRAM local buffer next to each DPU.
//!
//! WRAM is the scarce resource LoCaLUT budgets around: roughly half of it is
//! devoted to LUTs (or LUT slices) and the remainder holds weight/activation
//! tiles, partial outputs, and scratch (§V-A). The allocator here enforces
//! that budget; `p_local` (the largest buffer-resident packing degree) falls
//! out of allocation failures.
//!
//! WRAM accesses are single-cycle (§III-C), which is the entire reason the
//! buffer-sized LUT beats the DRAM-sized LUT in Fig. 3(c).

use crate::SimError;
use std::collections::BTreeMap;

/// The SRAM local buffer of one DPU, with a simple region allocator.
#[derive(Debug, Clone)]
pub struct Wram {
    capacity: u64,
    regions: BTreeMap<String, u64>,
}

/// A named WRAM reservation returned by [`Wram::alloc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WramRegion {
    /// Region name (unique within the allocator).
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
}

/// Errors from WRAM allocation.
pub type WramError = SimError;

impl Wram {
    /// Creates a WRAM of `capacity` bytes.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        Wram {
            capacity,
            regions: BTreeMap::new(),
        }
    }

    /// The 64 KB UPMEM WRAM.
    #[must_use]
    pub fn upmem() -> Self {
        Self::new(64 * 1024)
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.regions.values().sum()
    }

    /// Bytes still free.
    #[must_use]
    pub fn available(&self) -> u64 {
        self.capacity - self.used()
    }

    /// Allocates `bytes` under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WramExhausted`] when the buffer cannot fit the
    /// request, or [`SimError::InvalidConfig`] when `name` is already in use.
    pub fn alloc(&mut self, name: &str, bytes: u64) -> Result<WramRegion, WramError> {
        if self.regions.contains_key(name) {
            return Err(SimError::InvalidConfig(format!(
                "wram region '{name}' already allocated"
            )));
        }
        if bytes > self.available() {
            return Err(SimError::WramExhausted {
                requested: bytes,
                available: self.available(),
            });
        }
        self.regions.insert(name.to_owned(), bytes);
        Ok(WramRegion {
            name: name.to_owned(),
            bytes,
        })
    }

    /// Frees the region named `name`; freeing an unknown region is a no-op
    /// (destructor-style semantics — never fails).
    pub fn free(&mut self, name: &str) {
        self.regions.remove(name);
    }

    /// Frees all regions.
    pub fn reset(&mut self) {
        self.regions.clear();
    }

    /// Checks whether a hypothetical set of region sizes would fit.
    #[must_use]
    pub fn would_fit(&self, extra_bytes: u64) -> bool {
        extra_bytes <= self.available()
    }

    /// Names and sizes of live regions (deterministic order).
    pub fn regions(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.regions.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

impl Default for Wram {
    fn default() -> Self {
        Self::upmem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upmem_wram_is_64kb() {
        assert_eq!(Wram::upmem().capacity(), 65536);
    }

    #[test]
    fn alloc_free_cycle() {
        let mut w = Wram::new(1024);
        let r = w.alloc("lut", 512).unwrap();
        assert_eq!(r.bytes, 512);
        assert_eq!(w.available(), 512);
        w.free("lut");
        assert_eq!(w.available(), 1024);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut w = Wram::new(1024);
        w.alloc("x", 1).unwrap();
        let err = w.alloc("x", 1).unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig(_)));
    }

    #[test]
    fn exhaustion_reports_available() {
        let mut w = Wram::new(100);
        w.alloc("a", 60).unwrap();
        let err = w.alloc("b", 50).unwrap_err();
        assert_eq!(
            err,
            SimError::WramExhausted {
                requested: 50,
                available: 40
            }
        );
    }

    #[test]
    fn free_unknown_region_is_noop() {
        let mut w = Wram::new(10);
        w.free("nope");
        assert_eq!(w.available(), 10);
    }

    #[test]
    fn reset_clears_all() {
        let mut w = Wram::new(10);
        w.alloc("a", 4).unwrap();
        w.alloc("b", 4).unwrap();
        w.reset();
        assert_eq!(w.used(), 0);
    }

    #[test]
    fn would_fit_matches_alloc() {
        let mut w = Wram::new(64);
        w.alloc("a", 60).unwrap();
        assert!(w.would_fit(4));
        assert!(!w.would_fit(5));
    }

    #[test]
    fn regions_iterates_deterministically() {
        let mut w = Wram::new(100);
        w.alloc("b", 1).unwrap();
        w.alloc("a", 2).unwrap();
        let names: Vec<_> = w.regions().map(|(n, _)| n.to_owned()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
