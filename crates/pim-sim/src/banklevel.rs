//! Bank-level PIM models for §VI-K: an HBM-PIM-style SIMD design vs. the
//! LoCaLUT-enabled LUT-unit design (Fig. 20) and its floating-point
//! extension (Fig. 21a).
//!
//! The paper implements both designs on Ramulator 2.0; we model them at the
//! same abstraction level — DRAM command cadence — with the area-matched
//! configuration the paper derives from CACTI 7.0: the 16-lane SIMD unit of
//! a bank-level PIM is replaced by **sixteen 512 B canonical-LUT units per
//! bank** (0.0591 mm² vs 0.0592 mm² per bank).
//!
//! Mechanisms captured:
//!
//! * One SIMD command performs 16 MACs per bank; commands issue every
//!   `t_cmd`. Non-fp16 formats run at the fp16 rate (HBM-PIM has no sub-8bit
//!   datapath), which is exactly why LUTs win at low bitwidths.
//! * One LUT command performs one lookup per unit (= `p` MACs), with a
//!   per-packing-step scheduling overhead `alpha` (accumulator/shared-bus
//!   serialization grows with the slice working set).
//! * LUT slices are reloaded from the bank when the activation column
//!   changes; the host schedules groups sorted by canonical column so each
//!   distinct column is loaded once per bank pass.
//! * When the *full* canonical+reordering LUT exceeds the bank's LUT budget
//!   (high-`ba` floating point), slices must be generated on the host at
//!   runtime and shipped over the external link — the mechanism behind the
//!   W1A16 slowdown in Fig. 21(a).

/// Configuration of the bank-level PIM comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BankLevelConfig {
    /// Number of banks participating (HBM stack in the paper's setup).
    pub n_banks: u32,
    /// DRAM command cadence in seconds (tCCD_L-class, ~2 ns).
    pub t_cmd_seconds: f64,
    /// SIMD lanes per bank (HBM-PIM: 16 fp16 MACs per command).
    pub simd_lanes: u32,
    /// LUT units per bank (area-matched: 16).
    pub lut_units: u32,
    /// Bytes per LUT unit (512 B canonical-LUT units).
    pub lut_unit_bytes: u64,
    /// Command-stream overhead of the SIMD pipeline for non-native formats
    /// (row switches, operand staging).
    pub simd_overhead: f64,
    /// Per-packing-step scheduling overhead of the LUT path; effective
    /// lookup slots per command = `1 + alpha * (p - 1)`.
    pub lut_alpha: f64,
    /// Bank capacity budget for resident LUTs, bytes.
    pub bank_lut_budget: u64,
    /// Internal bank→unit reload bandwidth, bytes per command slot.
    pub internal_bytes_per_cmd: f64,
    /// Fixed command slots per slice reload (row activation + steering).
    pub reload_setup_cmds: f64,
    /// Host slice-generation throughput, entries per second (used only when
    /// the LUT cannot reside in the bank).
    pub host_gen_entries_per_sec: f64,
    /// External link bandwidth for host-generated slices, bytes/s.
    pub ext_link_bytes_per_sec: f64,
}

impl BankLevelConfig {
    /// The paper's area-matched HBM-PIM-class configuration.
    #[must_use]
    pub fn hbm_class() -> Self {
        BankLevelConfig {
            n_banks: 64,
            t_cmd_seconds: 2.0e-9,
            simd_lanes: 16,
            lut_units: 16,
            lut_unit_bytes: 512,
            simd_overhead: 1.15,
            lut_alpha: 0.35,
            bank_lut_budget: 32 * 1024 * 1024,
            internal_bytes_per_cmd: 32.0,
            reload_setup_cmds: 24.0,
            host_gen_entries_per_sec: 2.0e9,
            ext_link_bytes_per_sec: 16.0e9,
        }
    }
}

impl Default for BankLevelConfig {
    fn default() -> Self {
        Self::hbm_class()
    }
}

/// Outcome of planning a LUT-based bank-level GEMM.
#[derive(Debug, Clone, PartialEq)]
pub struct LutGemmPlan {
    /// Chosen packing degree.
    pub p: u32,
    /// Whether the full canonical+reordering LUT resides in the bank
    /// (otherwise slices are host-generated at runtime).
    pub bank_resident: bool,
    /// Seconds spent issuing lookup commands.
    pub lookup_seconds: f64,
    /// Seconds spent reloading slices from the bank.
    pub reload_seconds: f64,
    /// Seconds spent generating + shipping host-side slices (0 when
    /// bank-resident).
    pub hostgen_seconds: f64,
}

impl LutGemmPlan {
    /// Total seconds of the planned GEMM.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.lookup_seconds + self.reload_seconds + self.hostgen_seconds
    }
}

/// The bank-level PIM comparison model.
///
/// # Examples
///
/// ```
/// use pim_sim::banklevel::BankLevelPim;
///
/// // Fig. 20 at W1A3: the LUT-unit design beats the SIMD design ~2-3x.
/// let pim = BankLevelPim::default();
/// let simd = pim.simd_gemm_seconds(1024, 1024, 1024, false);
/// let lut = pim.lut_gemm(1024, 1024, 1024, 1, 3, 1).unwrap();
/// assert!(simd / lut.total_seconds() > 1.8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BankLevelPim {
    cfg: BankLevelConfig,
}

/// Number of multisets of size `p` over `n` symbols, `C(n+p-1, p)`, in f64
/// (saturates to `f64::INFINITY` for astronomically large spaces, which is
/// exactly the regime where LUTs stop being precomputable).
#[must_use]
pub fn multiset_count_f64(n_symbols: u64, p: u32) -> f64 {
    let mut acc = 1.0f64;
    for i in 0..u64::from(p) {
        acc = acc * (n_symbols + i) as f64 / (i + 1) as f64;
        if !acc.is_finite() {
            return f64::INFINITY;
        }
    }
    acc
}

impl BankLevelPim {
    /// Creates the model.
    #[must_use]
    pub fn new(cfg: BankLevelConfig) -> Self {
        BankLevelPim { cfg }
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &BankLevelConfig {
        &self.cfg
    }

    /// Seconds for the SIMD (HBM-PIM-style) design to run an `M×K×N` GEMM.
    /// `native` marks formats the SIMD datapath supports directly (fp16),
    /// which skip the staging overhead.
    #[must_use]
    pub fn simd_gemm_seconds(&self, m: u64, k: u64, n: u64, native: bool) -> f64 {
        let macs = (m * k * n) as f64;
        let per_cmd = f64::from(self.cfg.simd_lanes) * f64::from(self.cfg.n_banks);
        let overhead = if native { 1.0 } else { self.cfg.simd_overhead };
        macs / per_cmd * self.cfg.t_cmd_seconds * overhead
    }

    /// Bytes of one (canonical, reordering) slice pair at packing degree `p`.
    fn slice_bytes(bw: u32, p: u32, entry_bytes: u64) -> u64 {
        let rows = 1u64 << (bw * p).min(62);
        let reorder_entry = u64::from(bw * p).div_ceil(8);
        rows * (entry_bytes + reorder_entry)
    }

    /// Total bytes of the full canonical + reordering LUT at degree `p`
    /// (f64; may be astronomically large for wide activations).
    fn full_lut_bytes(bw: u32, ba: u32, p: u32, entry_bytes: u64) -> f64 {
        let rows = (1u64 << (bw * p).min(62)) as f64;
        let canon_cols = multiset_count_f64(1u64 << ba.min(62), p);
        let perm_cols = (1..=u64::from(p)).map(|i| i as f64).product::<f64>();
        let reorder_entry = u64::from(bw * p).div_ceil(8) as f64;
        rows * canon_cols * entry_bytes as f64 + rows * perm_cols * reorder_entry
    }

    /// Plans and times the LUT-unit design for an `M×K×N` GEMM with
    /// `bw`-bit weights, `ba`-bit activations, and `entry_bytes` per
    /// canonical entry, searching all feasible `p` and returning the
    /// fastest plan. Returns `None` if no `p ≥ 1` yields a slice that fits
    /// one LUT unit.
    #[must_use]
    pub fn lut_gemm(
        &self,
        m: u64,
        k: u64,
        n: u64,
        bw: u32,
        ba: u32,
        entry_bytes: u64,
    ) -> Option<LutGemmPlan> {
        let mut best: Option<LutGemmPlan> = None;
        for p in 1..=16u32 {
            if u64::from(bw * p) > 40 {
                break;
            }
            let slice = Self::slice_bytes(bw, p, entry_bytes);
            if slice > self.cfg.lut_unit_bytes {
                break;
            }
            let plan = self.time_lut_plan(m, k, n, bw, ba, p, entry_bytes, slice);
            if best
                .as_ref()
                .is_none_or(|b| plan.total_seconds() < b.total_seconds())
            {
                best = Some(plan);
            }
        }
        best
    }

    #[allow(clippy::too_many_arguments)]
    fn time_lut_plan(
        &self,
        m: u64,
        k: u64,
        n: u64,
        bw: u32,
        ba: u32,
        p: u32,
        entry_bytes: u64,
        slice_bytes: u64,
    ) -> LutGemmPlan {
        let cfg = &self.cfg;
        let groups = k.div_ceil(u64::from(p)) * n;
        let lookups = (m * groups) as f64;
        let per_cmd = f64::from(cfg.lut_units) * f64::from(cfg.n_banks);
        let slot_factor = 1.0 + cfg.lut_alpha * f64::from(p - 1);
        let lookup_seconds = lookups / per_cmd * cfg.t_cmd_seconds * slot_factor;

        // Distinct canonical columns per bank (groups are scheduled sorted
        // by column, so each distinct column reloads once per bank).
        let groups_per_bank = (groups as f64 / f64::from(cfg.n_banks)).ceil();
        let distinct = multiset_count_f64(1u64 << ba.min(62), p).min(groups_per_bank);
        let reload_cmds =
            distinct * (slice_bytes as f64 / cfg.internal_bytes_per_cmd + cfg.reload_setup_cmds);
        // Reloads proceed bank-parallel.
        let reload_seconds = reload_cmds * cfg.t_cmd_seconds;

        let bank_resident =
            Self::full_lut_bytes(bw, ba, p, entry_bytes) <= cfg.bank_lut_budget as f64;
        let hostgen_seconds = if bank_resident {
            0.0
        } else {
            // Every distinct column (across all banks) is generated on the
            // host and shipped over the shared external link.
            let distinct_total = multiset_count_f64(1u64 << ba.min(62), p).min(groups as f64);
            let entries = distinct_total * (1u64 << (bw * p).min(62)) as f64;
            entries / cfg.host_gen_entries_per_sec
                + entries * entry_bytes as f64 / cfg.ext_link_bytes_per_sec
        };

        LutGemmPlan {
            p,
            bank_resident,
            lookup_seconds,
            reload_seconds,
            hostgen_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiset_count_matches_small_cases() {
        assert_eq!(multiset_count_f64(8, 2) as u64, 36); // C(9,2)
        assert_eq!(multiset_count_f64(8, 8) as u64, 6435); // C(15,8)
        assert_eq!(multiset_count_f64(4, 4) as u64, 35); // C(7,4)
        assert_eq!(multiset_count_f64(2, 1) as u64, 2);
    }

    #[test]
    fn multiset_count_saturates() {
        assert!(multiset_count_f64(1 << 16, 16).is_finite());
        assert!(multiset_count_f64(1 << 16, 16) > 1e60);
        // 24 factors of ~9.2e18 overflow f64 and must saturate cleanly.
        assert!(multiset_count_f64(u64::MAX / 2, 24).is_infinite());
    }

    #[test]
    fn w1a3_lut_beats_simd_substantially() {
        // Fig 20: low-bit configs should see ~2-3x over the SIMD design.
        let pim = BankLevelPim::default();
        let (m, k, n) = (1024, 1024, 1024);
        let simd = pim.simd_gemm_seconds(m, k, n, false);
        let plan = pim.lut_gemm(m, k, n, 1, 3, 1).unwrap();
        let speedup = simd / plan.total_seconds();
        // Reload overhead makes moderate p optimal, but it must still be
        // well above the W4A4 regime.
        assert!(
            plan.p >= 4,
            "expected a high packing degree, got {}",
            plan.p
        );
        assert!(
            (1.8..4.0).contains(&speedup),
            "W1A3 speedup {speedup} out of the paper's band"
        );
    }

    #[test]
    fn w4a4_lut_still_edges_out_simd() {
        // Fig 20: W4A4 achieves ~1.17x.
        let pim = BankLevelPim::default();
        let (m, k, n) = (2048, 2048, 2048);
        let simd = pim.simd_gemm_seconds(m, k, n, false);
        let plan = pim.lut_gemm(m, k, n, 4, 4, 2).unwrap();
        let speedup = simd / plan.total_seconds();
        assert!(
            (0.95..1.5).contains(&speedup),
            "W4A4 speedup {speedup} should be modest"
        );
    }

    #[test]
    fn fp16_activations_favor_native_simd() {
        // Fig 21(a): W1A16 is a geomean slowdown because HBM-PIM is native
        // fp16 while LUT slices must be host-generated / reloaded per group.
        let pim = BankLevelPim::default();
        let (m, k, n) = (1024, 1024, 1024);
        let simd = pim.simd_gemm_seconds(m, k, n, true);
        let plan = pim.lut_gemm(m, k, n, 1, 16, 2).unwrap();
        let speedup = simd / plan.total_seconds();
        assert!(speedup < 1.0, "W1A16 should slow down, got {speedup}x");
    }

    #[test]
    fn plan_search_picks_feasible_slice() {
        let pim = BankLevelPim::default();
        let plan = pim.lut_gemm(512, 512, 512, 2, 2, 1).unwrap();
        // Slice must fit the 512B unit.
        let slice = BankLevelPim::slice_bytes(2, plan.p, 1);
        assert!(slice <= 512);
        assert!(plan.total_seconds() > 0.0);
    }

    #[test]
    fn infeasible_width_returns_none() {
        let pim = BankLevelPim::default();
        // 32-bit weights: even p=1 needs 2^32 entries per slice.
        assert!(pim.lut_gemm(64, 64, 64, 32, 4, 2).is_none());
    }

    #[test]
    fn simd_native_is_faster_than_staged() {
        let pim = BankLevelPim::default();
        let a = pim.simd_gemm_seconds(1024, 1024, 1024, true);
        let b = pim.simd_gemm_seconds(1024, 1024, 1024, false);
        assert!(a < b);
    }
}
