//! The in-order DPU core, modelled as an instruction cost table.
//!
//! UPMEM DPUs are general-purpose in-order RISC cores on a DRAM process:
//! single-issue, with only an 8×8-bit hardware multiplier (§II-A: "only
//! 8-bit integer multiplications are natively supported"). Wider multiplies
//! are multi-instruction software sequences, and bit-manipulation (the
//! unpack/permute/repack of weight reordering, §IV-B) is expensive — which
//! is exactly why the reordering LUT exists.
//!
//! The instruction counts here are the calibration knobs of the whole
//! reproduction; each constant documents its provenance.

use crate::timing::DpuTimings;

/// Classes of instruction sequences the kernels charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Generic single-issue ALU op (add/shift/mask/branch).
    Alu,
    /// WRAM load or store (single-cycle SRAM, fully pipelined).
    WramAccess,
    /// Native 8×8→16 multiply.
    Mul8,
    /// Software multiply for operands wider than 8 bits.
    MulWide,
}

/// Composite costs (in instructions) for the operations the paper's kernels
/// perform. See each field's documentation for the derivation.
#[derive(Debug, Clone, PartialEq)]
pub struct CostTable {
    /// One int8 multiply-accumulate in the naive PIM kernel. UPMEM DPUs
    /// have no single-cycle multiplier — the 8×8 multiply is a multi-
    /// instruction sequence — so a MAC with operand loads and
    /// addressing/loop overhead costs ≈ 11 instructions:
    /// `ld w, ld a, mul8 ≈ 4, add, addr/loop ≈ 4`.
    ///
    /// This makes LoCaLUT at `p = 8` (≈ 1.55 instr/MAC incl. streaming)
    /// ≈ 6–7× faster at kernel level, landing at the paper's "up to
    /// 4.73×" over Naive PIM once host phases dilute it (Fig. 9).
    pub naive_mac_int8: u32,
    /// One MAC with an operand wider than 8 bits (software multiply).
    pub naive_mac_wide: u32,
    /// One LTC (bit-serial) table lookup covering `group` MACs of one weight
    /// bit-plane: extract packed weight nibble (shift+mask ≈ 3), table
    /// address arithmetic (≈ 4), WRAM load, shift by bit position (≈ 2),
    /// accumulate + loop (≈ 5) → 15 instructions. The DPU's weak bit
    /// manipulation makes this pricier than a logic-chip implementation.
    ///
    /// Bit-serial cost scales with the weight bitwidth, which is why LTC
    /// falls behind Naive PIM at W4A4 (Fig. 9, Fig. 14).
    pub ltc_lookup: u32,
    /// Building one entry of the LTC activation table at runtime (one add +
    /// one store; tables are rebuilt per activation tile).
    pub ltc_table_entry_build: u32,
    /// Activation group size `g` of the bit-serial LTC design (T-MAC and
    /// LUT Tensor Core use 4).
    pub ltc_group: u32,
    /// One buffer-resident operation-packed LUT lookup (OP baseline):
    /// load the packed weight row index and precomputed activation column
    /// index, compute the entry address (the same index-calc tax the
    /// 12-instruction composite pays), WRAM entry load, accumulate + loop
    /// → 10 instructions. A single LUT access saves only the second
    /// access of the canonical+reordering pair, so OP lookups are barely
    /// cheaper than the full composite — OP's advantage comes from `p`,
    /// not per-lookup cost.
    pub op_lookup: u32,
    /// Software weight reordering per lookup when canonicalization is used
    /// *without* the reordering LUT (OP+LC design point): unpack `p` weight
    /// fields, apply the sorted permutation, repack — about 8 instructions
    /// per packed element (sub-byte extract/insert on a core with no
    /// bit-field ops) plus 6 of fixed overhead. Charged as
    /// `reorder_sw_per_elem * p + reorder_sw_fixed`.
    ///
    /// This is the "significant performance drop from the added ordering
    /// overhead at the processing unit" of §VI-B.
    pub reorder_sw_per_elem: u32,
    /// Fixed part of the software reordering sequence.
    pub reorder_sw_fixed: u32,
    /// Instructions of the full canonical+reordering lookup composite that
    /// are index calculation (address/radix arithmetic). Fig. 16(b) shows
    /// index calculation dominating the kernel; of the 12-instruction
    /// `L_local` composite we attribute 6 to index calc.
    pub lookup_index_calc: u32,
    /// Instructions attributed to the reordering LUT access itself
    /// (1 of 12 ≈ 8%; the paper measures the access at 6.9% of kernel
    /// time).
    pub lookup_reorder_access: u32,
    /// Instructions attributed to the canonical LUT access.
    pub lookup_canonical_access: u32,
    /// Instructions attributed to accumulation.
    pub lookup_accumulate: u32,
}

impl CostTable {
    /// The calibrated UPMEM cost table.
    #[must_use]
    pub fn upmem() -> Self {
        let t = CostTable {
            naive_mac_int8: 11,
            naive_mac_wide: 30,
            ltc_lookup: 15,
            ltc_table_entry_build: 2,
            ltc_group: 4,
            op_lookup: 10,
            reorder_sw_per_elem: 8,
            reorder_sw_fixed: 6,
            lookup_index_calc: 6,
            lookup_reorder_access: 1,
            lookup_canonical_access: 2,
            lookup_accumulate: 3,
        };
        debug_assert_eq!(
            t.lookup_index_calc
                + t.lookup_reorder_access
                + t.lookup_canonical_access
                + t.lookup_accumulate,
            12,
            "lookup composite must sum to the paper's 12 instructions"
        );
        t
    }

    /// Instructions for one naive MAC at the given operand bitwidths.
    #[must_use]
    pub fn naive_mac(&self, bw: u32, ba: u32) -> u32 {
        if bw <= 8 && ba <= 8 {
            self.naive_mac_int8
        } else {
            self.naive_mac_wide
        }
    }

    /// Instructions for the software reordering of a `p`-element packed
    /// weight vector (the OP+LC design point).
    #[must_use]
    pub fn reorder_sw(&self, p: u32) -> u32 {
        self.reorder_sw_per_elem * p + self.reorder_sw_fixed
    }

    /// Total instructions of the canonical+reordering lookup composite
    /// (must equal the 12 instructions behind `L_local`).
    #[must_use]
    pub fn lookup_total(&self) -> u32 {
        self.lookup_index_calc
            + self.lookup_reorder_access
            + self.lookup_canonical_access
            + self.lookup_accumulate
    }
}

impl Default for CostTable {
    fn default() -> Self {
        Self::upmem()
    }
}

/// The DPU core: a cost table bound to clock timings.
#[derive(Debug, Clone, Default)]
pub struct Processor {
    /// Instruction cost table.
    pub costs: CostTable,
    /// Clock/bandwidth timings.
    pub timings: DpuTimings,
}

impl Processor {
    /// Creates an UPMEM-calibrated processor.
    #[must_use]
    pub fn upmem() -> Self {
        Processor {
            costs: CostTable::upmem(),
            timings: DpuTimings::upmem(),
        }
    }

    /// Seconds to retire `n` instructions.
    #[must_use]
    pub fn instr_seconds(&self, n: u64) -> f64 {
        self.timings.instruction_seconds(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_composite_sums_to_twelve() {
        assert_eq!(CostTable::upmem().lookup_total(), 12);
    }

    #[test]
    fn naive_mac_widens_beyond_int8() {
        let c = CostTable::upmem();
        assert_eq!(c.naive_mac(4, 4), c.naive_mac_int8);
        assert_eq!(c.naive_mac(8, 8), c.naive_mac_int8);
        assert_eq!(c.naive_mac(1, 16), c.naive_mac_wide);
        assert!(c.naive_mac(1, 16) > c.naive_mac(1, 3));
    }

    #[test]
    fn reorder_sw_grows_with_p() {
        let c = CostTable::upmem();
        assert!(c.reorder_sw(7) > c.reorder_sw(3));
        assert_eq!(c.reorder_sw(0), c.reorder_sw_fixed);
    }

    #[test]
    fn ltc_cost_scales_with_weight_bits() {
        // Bit-serial: W4 needs 4 passes; per-MAC cost exceeds naive int8 MAC.
        let c = CostTable::upmem();
        let per_mac_w4 = f64::from(c.ltc_lookup * 4) / f64::from(c.ltc_group);
        assert!(per_mac_w4 > f64::from(c.naive_mac_int8));
        let per_mac_w1 = f64::from(c.ltc_lookup) / f64::from(c.ltc_group);
        assert!(per_mac_w1 < f64::from(c.naive_mac_int8));
    }

    #[test]
    fn processor_instr_seconds_uses_l_local_rate() {
        let p = Processor::upmem();
        let twelve = p.instr_seconds(12);
        assert!((twelve - p.timings.lookup_accum_seconds).abs() < 1e-18);
    }
}
