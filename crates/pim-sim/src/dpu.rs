//! One DPU: a DRAM bank, a WRAM buffer, an in-order core, and a ledger.
//!
//! Kernels drive a [`Dpu`] by (1) reserving bank/WRAM capacity and (2)
//! charging events (DRAM streams, instruction sequences, profiled lookup
//! composites) against a [`Category`]. The DPU turns events into simulated
//! seconds using the calibrated timing model and records everything in a
//! [`CycleLedger`].

use crate::dram::{BankRegion, DramBank};
use crate::processor::Processor;
use crate::stats::{Category, CycleLedger, Profile};
use crate::timing::DpuTimings;
use crate::trace::{Trace, TraceEvent, TraceKind};
use crate::wram::{Wram, WramRegion};
use crate::SimError;

/// Static configuration of one DPU.
#[derive(Debug, Clone)]
pub struct DpuConfig {
    /// DRAM bank capacity in bytes (UPMEM: 64 MB).
    pub bank_bytes: u64,
    /// WRAM capacity in bytes (UPMEM: 64 KB).
    pub wram_bytes: u64,
    /// Timing constants.
    pub timings: DpuTimings,
    /// Instruction cost table.
    pub processor: Processor,
    /// Fraction of each memory devoted to LUTs (default
    /// [`DpuConfig::LUT_BUDGET_FRACTION`]; tunable for the budget
    /// ablation — §VII-B calls managing this tradeoff an open challenge).
    pub lut_budget_fraction: f64,
}

impl DpuConfig {
    /// The UPMEM DPU configuration used throughout the paper.
    #[must_use]
    pub fn upmem() -> Self {
        DpuConfig {
            bank_bytes: 64 * 1024 * 1024,
            wram_bytes: 64 * 1024,
            timings: DpuTimings::upmem(),
            processor: Processor::upmem(),
            lut_budget_fraction: Self::LUT_BUDGET_FRACTION,
        }
    }

    /// Fraction of each memory devoted to LUTs ("approximately half",
    /// §V-A). 0.55 reconciles every calibration point in the paper:
    /// `p_local = 5`/`p_DRAM = 8` at W1A3 with canonicalization (3 and 6
    /// without), and Fig. 18(a)'s "maximum packing degree of two fits in
    /// the local buffer" for W4A4 (whose canonical LUT is 34 KB).
    pub const LUT_BUDGET_FRACTION: f64 = 0.55;

    /// LUT capacity budget within the DRAM bank (≈ 35 MB on UPMEM).
    #[must_use]
    pub fn bank_lut_budget(&self) -> u64 {
        (self.bank_bytes as f64 * self.lut_budget_fraction) as u64
    }

    /// LUT capacity budget within WRAM (≈ 35 KB on UPMEM).
    #[must_use]
    pub fn wram_lut_budget(&self) -> u64 {
        (self.wram_bytes as f64 * self.lut_budget_fraction) as u64
    }
}

impl Default for DpuConfig {
    fn default() -> Self {
        Self::upmem()
    }
}

/// A simulated DPU accumulating a cost ledger.
#[derive(Debug, Clone)]
pub struct Dpu {
    cfg: DpuConfig,
    bank: DramBank,
    wram: Wram,
    ledger: CycleLedger,
    trace: Option<Trace>,
}

impl Dpu {
    /// Creates a DPU from a configuration.
    #[must_use]
    pub fn new(cfg: DpuConfig) -> Self {
        let bank = DramBank::new(cfg.bank_bytes, cfg.timings.clone());
        let wram = Wram::new(cfg.wram_bytes);
        Dpu {
            cfg,
            bank,
            wram,
            ledger: CycleLedger::new(),
            trace: None,
        }
    }

    /// Enables event tracing with a bounded buffer (see [`crate::trace`]).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::with_capacity(capacity));
    }

    /// Takes the trace buffer (tracing stays enabled with a fresh buffer
    /// of the same capacity if it was enabled).
    pub fn take_trace(&mut self) -> Option<Trace> {
        let taken = self.trace.take();
        if let Some(t) = &taken {
            self.trace = Some(Trace::with_capacity(t.capacity()));
        }
        taken
    }

    fn record(&mut self, category: Category, seconds: f64, kind: TraceKind) {
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEvent {
                at_seconds: self.ledger.total_seconds(),
                seconds,
                category,
                kind,
            });
        }
    }

    /// An UPMEM DPU.
    #[must_use]
    pub fn upmem() -> Self {
        Self::new(DpuConfig::upmem())
    }

    /// The DPU's configuration.
    #[must_use]
    pub fn config(&self) -> &DpuConfig {
        &self.cfg
    }

    /// The DRAM bank (for capacity queries).
    #[must_use]
    pub fn bank(&self) -> &DramBank {
        &self.bank
    }

    /// The WRAM buffer (for capacity queries).
    #[must_use]
    pub fn wram(&self) -> &Wram {
        &self.wram
    }

    /// Reserves DRAM bank capacity.
    ///
    /// # Errors
    ///
    /// [`SimError::BankExhausted`] when the bank is full.
    pub fn bank_place(&mut self, name: &str, bytes: u64) -> Result<BankRegion, SimError> {
        self.bank.place(name, bytes)
    }

    /// Reserves WRAM capacity.
    ///
    /// # Errors
    ///
    /// [`SimError::WramExhausted`] when WRAM is full, or
    /// [`SimError::InvalidConfig`] on a duplicate region name.
    pub fn wram_alloc(&mut self, name: &str, bytes: u64) -> Result<WramRegion, SimError> {
        self.wram.alloc(name, bytes)
    }

    /// Frees a WRAM region by name.
    pub fn wram_free(&mut self, name: &str) {
        self.wram.free(name);
    }

    /// Releases all bank and WRAM reservations (between kernels/layers).
    pub fn reset_allocations(&mut self) {
        self.bank.reset_allocations();
        self.wram.reset();
    }

    // ------------------------------------------------------------------
    // Charging API
    // ------------------------------------------------------------------

    /// Streams `bytes` from the DRAM bank into WRAM (row-buffer modelled at
    /// sequential offsets) and charges the time to `cat`.
    pub fn charge_dram_stream(&mut self, bytes: u64, cat: Category) {
        let secs = self.bank.stream_read(0, bytes);
        self.ledger.charge(cat, secs);
        self.ledger.dram_read_bytes += bytes;
        self.record(cat, secs, TraceKind::DramRead { bytes });
    }

    /// Streams `bytes` from WRAM back into the bank.
    pub fn charge_dram_writeback(&mut self, bytes: u64, cat: Category) {
        let secs = self.bank.stream_write(0, bytes);
        self.ledger.charge(cat, secs);
        self.ledger.dram_write_bytes += bytes;
        self.record(cat, secs, TraceKind::DramWrite { bytes });
    }

    /// Charges `n` single-issue instructions to `cat`.
    pub fn charge_instrs(&mut self, n: u64, cat: Category) {
        let secs = self.cfg.timings.instruction_seconds(n);
        self.ledger.charge(cat, secs);
        self.ledger.instructions += n;
        self.record(cat, secs, TraceKind::Instructions { count: n });
    }

    /// Charges `n` WRAM word accesses (single-cycle each, already part of an
    /// instruction stream — this only bumps the energy counter plus charges
    /// the instruction time).
    pub fn charge_wram_accesses(&mut self, n: u64, cat: Category) {
        let secs = self.cfg.timings.instruction_seconds(n);
        self.ledger.charge(cat, secs);
        self.ledger.wram_accesses += n;
        self.ledger.instructions += n;
    }

    /// Charges `n` profiled (canonical + reordering) LUT entry-pair streams
    /// from bank to WRAM (`L_D` each) to [`Category::LutLoad`], also counting
    /// the streamed bytes for the energy model.
    pub fn charge_lut_pair_stream(&mut self, n: u64, bytes: u64) {
        let secs = self.cfg.timings.lut_pair_stream_seconds(n);
        self.ledger.charge(Category::LutLoad, secs);
        self.ledger.dram_read_bytes += bytes;
        self.record(
            Category::LutLoad,
            secs,
            TraceKind::LutPairStream { pairs: n },
        );
    }

    /// Charges `n` profiled lookup+accumulate composites (`L_local` each),
    /// splitting the 12 instructions across the breakdown categories of
    /// Fig. 16(b).
    pub fn charge_lookup_accum(&mut self, n: u64) {
        let costs = &self.cfg.processor.costs;
        let total = u64::from(costs.lookup_total());
        let l_local = self.cfg.timings.lookup_accum_seconds;
        let per_instr = l_local / total as f64;
        let idx = u64::from(costs.lookup_index_calc);
        let ro = u64::from(costs.lookup_reorder_access);
        let ca = u64::from(costs.lookup_canonical_access);
        let ac = u64::from(costs.lookup_accumulate);
        let nf = n as f64;
        self.ledger
            .charge(Category::IndexCalc, per_instr * idx as f64 * nf);
        self.ledger
            .charge(Category::ReorderLookup, per_instr * ro as f64 * nf);
        self.ledger
            .charge(Category::CanonicalLookup, per_instr * ca as f64 * nf);
        self.ledger
            .charge(Category::Accumulate, per_instr * ac as f64 * nf);
        self.ledger.instructions += n * total;
        // One reordering access + one canonical access per composite.
        self.ledger.wram_accesses += 2 * n;
        self.record(
            Category::CanonicalLookup,
            l_local * nf,
            TraceKind::LookupAccum { count: n },
        );
    }

    /// Current total simulated seconds.
    #[must_use]
    pub fn elapsed_seconds(&self) -> f64 {
        self.ledger.total_seconds()
    }

    /// Snapshot of the ledger as an immutable profile.
    #[must_use]
    pub fn profile(&self) -> Profile {
        Profile::from_ledger(self.ledger.clone())
    }

    /// Clears the ledger (keeps allocations).
    pub fn reset_ledger(&mut self) {
        self.ledger = CycleLedger::new();
    }
}

impl Default for Dpu {
    fn default() -> Self {
        Self::upmem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_are_approximately_half_capacity() {
        let cfg = DpuConfig::upmem();
        let frac = DpuConfig::LUT_BUDGET_FRACTION;
        assert_eq!(
            cfg.bank_lut_budget(),
            (64.0 * 1024.0 * 1024.0 * frac) as u64
        );
        assert_eq!(cfg.wram_lut_budget(), (64.0 * 1024.0 * frac) as u64);
        // "Approximately half".
        assert!((0.45..0.6).contains(&frac));
    }

    #[test]
    fn lookup_accum_charges_l_local_split() {
        let mut dpu = Dpu::upmem();
        dpu.charge_lookup_accum(1000);
        let p = dpu.profile();
        let l_local = dpu.config().timings.lookup_accum_seconds;
        assert!((p.total_seconds() - 1000.0 * l_local).abs() < 1e-12);
        // Index calc gets 6/12 of the composite.
        assert!((p.seconds(Category::IndexCalc) - 1000.0 * l_local * 6.0 / 12.0).abs() < 1e-12);
        assert!(p.seconds(Category::ReorderLookup) > 0.0);
        assert!(p.seconds(Category::CanonicalLookup) > 0.0);
        assert!(p.seconds(Category::Accumulate) > 0.0);
        assert_eq!(p.ledger().wram_accesses, 2000);
        assert_eq!(p.ledger().instructions, 12_000);
    }

    #[test]
    fn dram_stream_accumulates_bytes() {
        let mut dpu = Dpu::upmem();
        dpu.charge_dram_stream(4096, Category::DataTransfer);
        dpu.charge_dram_writeback(128, Category::OutputWriteback);
        let l = dpu.profile();
        assert_eq!(l.ledger().dram_read_bytes, 4096);
        assert_eq!(l.ledger().dram_write_bytes, 128);
        assert!(l.seconds(Category::DataTransfer) > 0.0);
        assert!(l.seconds(Category::OutputWriteback) > 0.0);
    }

    #[test]
    fn lut_pair_stream_uses_l_d() {
        let mut dpu = Dpu::upmem();
        dpu.charge_lut_pair_stream(1_000_000, 2_000_000);
        let expected = 1e6 * dpu.config().timings.lut_entry_pair_stream_seconds;
        assert!((dpu.elapsed_seconds() - expected).abs() < 1e-9);
        assert_eq!(dpu.profile().ledger().dram_read_bytes, 2_000_000);
    }

    #[test]
    fn reset_ledger_keeps_allocations() {
        let mut dpu = Dpu::upmem();
        dpu.wram_alloc("lut", 1024).unwrap();
        dpu.charge_instrs(10, Category::Other);
        dpu.reset_ledger();
        assert_eq!(dpu.elapsed_seconds(), 0.0);
        assert_eq!(dpu.wram().used(), 1024);
    }

    #[test]
    fn reset_allocations_frees_memories() {
        let mut dpu = Dpu::upmem();
        dpu.wram_alloc("a", 100).unwrap();
        dpu.bank_place("b", 1000).unwrap();
        dpu.reset_allocations();
        assert_eq!(dpu.wram().used(), 0);
        assert_eq!(dpu.bank().allocated(), 0);
    }

    #[test]
    fn tracing_records_events_in_order() {
        let mut dpu = Dpu::upmem();
        dpu.enable_trace(16);
        dpu.charge_dram_stream(128, Category::DataTransfer);
        dpu.charge_lookup_accum(10);
        dpu.charge_instrs(5, Category::Compute);
        let trace = dpu.take_trace().expect("tracing enabled");
        assert_eq!(trace.events().len(), 3);
        assert!(matches!(
            trace.events()[0].kind,
            crate::trace::TraceKind::DramRead { bytes: 128 }
        ));
        assert!(matches!(
            trace.events()[1].kind,
            crate::trace::TraceKind::LookupAccum { count: 10 }
        ));
        // Timestamps are non-decreasing and end-aligned.
        assert!(trace.events()[0].at_seconds <= trace.events()[1].at_seconds);
        assert!((trace.events()[2].at_seconds - dpu.elapsed_seconds()).abs() < 1e-15);
        // Taking the trace re-arms a fresh buffer.
        dpu.charge_instrs(1, Category::Other);
        assert_eq!(dpu.take_trace().unwrap().events().len(), 1);
    }

    #[test]
    fn tracing_disabled_by_default() {
        let mut dpu = Dpu::upmem();
        dpu.charge_instrs(5, Category::Compute);
        assert!(dpu.take_trace().is_none());
    }

    #[test]
    fn wram_exhaustion_propagates() {
        let mut dpu = Dpu::upmem();
        let err = dpu.wram_alloc("too-big", 1 << 20).unwrap_err();
        assert!(matches!(err, SimError::WramExhausted { .. }));
    }
}
