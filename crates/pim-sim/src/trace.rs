//! Event tracing: an optional, structured record of every charge a DPU
//! takes, for debugging kernels and visualizing dataflows.
//!
//! Tracing is off by default (zero overhead beyond a branch); enable it
//! with [`Dpu::enable_trace`](crate::Dpu::enable_trace) and collect the
//! events with [`Dpu::take_trace`](crate::Dpu::take_trace).

use crate::stats::Category;
use core::fmt;

/// One recorded simulation event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated time at which the event *ends* (total elapsed seconds
    /// after the charge).
    pub at_seconds: f64,
    /// Duration of the event in seconds.
    pub seconds: f64,
    /// The category charged.
    pub category: Category,
    /// What happened.
    pub kind: TraceKind,
}

/// The kind of a traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// DRAM bank → WRAM stream of the given bytes.
    DramRead {
        /// Bytes streamed.
        bytes: u64,
    },
    /// WRAM → DRAM bank writeback of the given bytes.
    DramWrite {
        /// Bytes streamed.
        bytes: u64,
    },
    /// Instruction sequence.
    Instructions {
        /// Instructions retired.
        count: u64,
    },
    /// LUT slice entry-pair stream (`L_D` units).
    LutPairStream {
        /// Entry pairs streamed.
        pairs: u64,
    },
    /// Lookup+accumulate composites (`L_local` units).
    LookupAccum {
        /// Composites executed.
        count: u64,
    },
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.6e}s] {:<18} {:>10.3e}s  {:?}",
            self.at_seconds,
            self.category.label(),
            self.seconds,
            self.kind
        )
    }
}

/// A bounded trace buffer.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// Creates a trace buffer bounded to `capacity` events (older events
    /// are never evicted; overflow events are counted and dropped so the
    /// head of an execution stays inspectable).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event (drops it when full).
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The buffer's capacity bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events that were dropped due to the capacity bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the buffer, returning the events.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(secs: f64) -> TraceEvent {
        TraceEvent {
            at_seconds: secs,
            seconds: secs,
            category: Category::Compute,
            kind: TraceKind::Instructions { count: 1 },
        }
    }

    #[test]
    fn bounded_buffer_drops_overflow() {
        let mut t = Trace::with_capacity(2);
        t.record(event(1.0));
        t.record(event(2.0));
        t.record(event(3.0));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.events()[0].at_seconds, 1.0);
    }

    #[test]
    fn display_is_informative() {
        let s = event(0.5).to_string();
        assert!(s.contains("compute"));
        assert!(s.contains("Instructions"));
    }
}
