//! Cycle/time accounting: the per-category ledger behind every kernel's
//! breakdown (Fig. 16) and the energy model (Fig. 14).

use core::fmt;

/// The cost categories a kernel can charge time against.
///
/// These mirror the breakdown categories the paper reports in Fig. 16(b)
/// ("Canonical LUT Access", "Reordering LUT Access", "Reordering LUT Index
/// Calc.", "Act./Weight Transfer", "Accumulate", "Others") plus the
/// system-level phases of Fig. 16(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// Streaming LUT slices from the DRAM bank into WRAM (LUT slice
    /// streaming, §IV-C).
    LutLoad,
    /// Canonical LUT accesses in WRAM.
    CanonicalLookup,
    /// Reordering LUT accesses in WRAM.
    ReorderLookup,
    /// Index calculation for the reordering LUT (packing/radix arithmetic on
    /// the DPU) — the dominant kernel cost per Fig. 16(b).
    IndexCalc,
    /// Partial-sum accumulation.
    Accumulate,
    /// Streaming weights/activations between DRAM bank and WRAM.
    DataTransfer,
    /// Writing final outputs back to the DRAM bank.
    OutputWriteback,
    /// Host ↔ PIM transfers over the memory channel.
    HostTransfer,
    /// Host-side computation (softmax, layer norm, GELU, centroid
    /// selection, and anything not covered by the two phases below).
    HostCompute,
    /// Host-side quantization/dequantization (Fig. 16a "Quantization").
    HostQuantize,
    /// Host-side activation sorting and packing (Fig. 16a "Packing &
    /// Sorting").
    HostSortPack,
    /// Host-side PQ centroid selection (Fig. 16a "Centroid Selection";
    /// used by the PIM-DL / LUT-DLA baselines).
    HostCentroid,
    /// Arithmetic compute on the DPU (naive MAC kernels, bit-serial
    /// shift/add of the LTC baseline).
    Compute,
    /// Anything else (loop control, bookkeeping).
    Other,
}

impl Category {
    /// All categories, in display order.
    pub const ALL: [Category; 14] = [
        Category::LutLoad,
        Category::CanonicalLookup,
        Category::ReorderLookup,
        Category::IndexCalc,
        Category::Accumulate,
        Category::DataTransfer,
        Category::OutputWriteback,
        Category::HostTransfer,
        Category::HostCompute,
        Category::HostQuantize,
        Category::HostSortPack,
        Category::HostCentroid,
        Category::Compute,
        Category::Other,
    ];

    fn index(self) -> usize {
        match self {
            Category::LutLoad => 0,
            Category::CanonicalLookup => 1,
            Category::ReorderLookup => 2,
            Category::IndexCalc => 3,
            Category::Accumulate => 4,
            Category::DataTransfer => 5,
            Category::OutputWriteback => 6,
            Category::HostTransfer => 7,
            Category::HostCompute => 8,
            Category::HostQuantize => 9,
            Category::HostSortPack => 10,
            Category::HostCentroid => 11,
            Category::Compute => 12,
            Category::Other => 13,
        }
    }

    /// Short human-readable label used by the bench tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Category::LutLoad => "lut-load",
            Category::CanonicalLookup => "canonical-lookup",
            Category::ReorderLookup => "reorder-lookup",
            Category::IndexCalc => "index-calc",
            Category::Accumulate => "accumulate",
            Category::DataTransfer => "data-transfer",
            Category::OutputWriteback => "output-writeback",
            Category::HostTransfer => "host-transfer",
            Category::HostCompute => "host-compute",
            Category::HostQuantize => "host-quantize",
            Category::HostSortPack => "host-sort-pack",
            Category::HostCentroid => "host-centroid",
            Category::Compute => "compute",
            Category::Other => "other",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

const N_CATEGORIES: usize = Category::ALL.len();

/// A ledger of simulated seconds charged per [`Category`], plus event
/// counters consumed by the energy model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CycleLedger {
    seconds: [f64; N_CATEGORIES],
    /// Bytes read from the DRAM bank.
    pub dram_read_bytes: u64,
    /// Bytes written to the DRAM bank.
    pub dram_write_bytes: u64,
    /// WRAM accesses (word-granularity events).
    pub wram_accesses: u64,
    /// Instructions retired by the DPU core.
    pub instructions: u64,
    /// Bytes moved over the host link.
    pub host_bytes: u64,
    /// Host-side scalar operations (quantization, sorting, softmax, ...).
    pub host_ops: u64,
}

impl CycleLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `seconds` of simulated time to `category`.
    pub fn charge(&mut self, category: Category, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative time charged to {category}");
        self.seconds[category.index()] += seconds;
    }

    /// Simulated seconds charged to `category`.
    #[must_use]
    pub fn seconds(&self, category: Category) -> f64 {
        self.seconds[category.index()]
    }

    /// Total simulated seconds across all categories.
    ///
    /// The DPU is in-order and single-threaded per tasklet in our model, so
    /// categories are serial and the total is the sum.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// Merges another ledger into this one (serial composition: times and
    /// counters add).
    pub fn merge(&mut self, other: &CycleLedger) {
        for i in 0..N_CATEGORIES {
            self.seconds[i] += other.seconds[i];
        }
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.wram_accesses += other.wram_accesses;
        self.instructions += other.instructions;
        self.host_bytes += other.host_bytes;
        self.host_ops += other.host_ops;
    }

    /// Scales all times and counters by an integral factor (e.g. to expand a
    /// per-tile measurement to `n` identical tiles).
    pub fn scale(&mut self, n: u64) {
        for s in &mut self.seconds {
            *s *= n as f64;
        }
        self.dram_read_bytes *= n;
        self.dram_write_bytes *= n;
        self.wram_accesses *= n;
        self.instructions *= n;
        self.host_bytes *= n;
        self.host_ops *= n;
    }

    /// Iterates over `(category, seconds)` pairs with non-zero time.
    pub fn iter(&self) -> impl Iterator<Item = (Category, f64)> + '_ {
        Category::ALL
            .iter()
            .map(|&c| (c, self.seconds(c)))
            .filter(|&(_, s)| s > 0.0)
    }
}

/// A finished execution profile: an immutable [`CycleLedger`] snapshot.
///
/// `Profile` is what kernels return; it can be queried per category,
/// merged across phases, and fed to [`crate::EnergyModel`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    ledger: CycleLedger,
}

impl Profile {
    /// Wraps a ledger into a profile.
    #[must_use]
    pub fn from_ledger(ledger: CycleLedger) -> Self {
        Profile { ledger }
    }

    /// An empty profile.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulated seconds in `category`.
    #[must_use]
    pub fn seconds(&self, category: Category) -> f64 {
        self.ledger.seconds(category)
    }

    /// Total simulated seconds.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.ledger.total_seconds()
    }

    /// The underlying ledger (event counters for the energy model).
    #[must_use]
    pub fn ledger(&self) -> &CycleLedger {
        &self.ledger
    }

    /// Serial composition of two profiles.
    #[must_use]
    pub fn merged(&self, other: &Profile) -> Profile {
        let mut ledger = self.ledger.clone();
        ledger.merge(&other.ledger);
        Profile { ledger }
    }

    /// In-place serial composition: folds `other` into this profile
    /// without cloning the accumulated ledger. This is the fold primitive
    /// for wide merges (a 2048-bank shard merge would otherwise clone the
    /// accumulator once per bank through [`Profile::merged`]).
    pub fn merge_from(&mut self, other: &Profile) {
        self.ledger.merge(&other.ledger);
    }

    /// Scales the profile by `n` repetitions.
    #[must_use]
    pub fn scaled(&self, n: u64) -> Profile {
        let mut ledger = self.ledger.clone();
        ledger.scale(n);
        Profile { ledger }
    }

    /// Fraction of total time spent in `category` (0 if the profile is empty).
    #[must_use]
    pub fn fraction(&self, category: Category) -> f64 {
        let total = self.total_seconds();
        if total == 0.0 {
            0.0
        } else {
            self.seconds(category) / total
        }
    }
}

/// Femtoseconds per second: the quantum [`Stats`] stores time in.
const FEMTOS_PER_SECOND: f64 = 1e15;

/// An **associative, commutative** statistics aggregate for cross-bank
/// merging.
///
/// [`CycleLedger::merge`] adds `f64` seconds, and floating-point addition is
/// not associative: folding per-bank ledgers in different orders (as a
/// work-stealing runtime naturally would) can produce bitwise-different
/// totals. `Stats` fixes the accumulation by quantizing each category's
/// seconds to integer femtoseconds **once** at ingest ([`Stats::from_profile`])
/// and merging in exact integer arithmetic from then on, so
/// `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` and `a ⊕ b == b ⊕ a` hold *exactly* — any
/// merge tree over the same per-bank profiles yields the identical
/// aggregate. `Stats::default()` is the identity element.
///
/// At the femtosecond quantum, a simulated second carries 15 significant
/// digits — far below the model's calibration error — and the `u128`
/// accumulators cannot realistically overflow (more than 1e16 simulated
/// years of headroom).
///
/// # Examples
///
/// ```
/// use pim_sim::{Category, CycleLedger, Profile, Stats};
///
/// let mut ledger = CycleLedger::new();
/// ledger.charge(Category::Compute, 0.1);
/// let bank = Stats::from_profile(&Profile::from_ledger(ledger));
///
/// // Merging is associative and commutative — exactly.
/// let ab = bank.clone().merged(&bank);
/// assert_eq!(ab, bank.clone().merged(&bank));
/// assert_eq!(ab.banks(), 2);
/// assert!((ab.total_seconds() - 0.2).abs() < 1e-12);
///
/// // The empty Stats is the identity element.
/// assert_eq!(bank.clone().merged(&Stats::default()), bank);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Stats {
    /// Per-category simulated time in femtoseconds.
    femtos: [u128; N_CATEGORIES],
    /// Number of profiles merged into this aggregate.
    banks: u64,
    /// Bytes read from DRAM banks across all merged profiles.
    pub dram_read_bytes: u128,
    /// Bytes written to DRAM banks across all merged profiles.
    pub dram_write_bytes: u128,
    /// WRAM accesses across all merged profiles.
    pub wram_accesses: u128,
    /// Instructions retired across all merged profiles.
    pub instructions: u128,
    /// Bytes moved over the host link across all merged profiles.
    pub host_bytes: u128,
    /// Host-side scalar operations across all merged profiles.
    pub host_ops: u128,
}

impl Stats {
    /// Ingests one profile, quantizing its per-category seconds to integer
    /// femtoseconds (round-to-nearest).
    #[must_use]
    pub fn from_profile(profile: &Profile) -> Self {
        Self::from_ledger(profile.ledger())
    }

    /// Ingests one ledger (see [`Stats::from_profile`]).
    #[must_use]
    pub fn from_ledger(ledger: &CycleLedger) -> Self {
        let mut femtos = [0u128; N_CATEGORIES];
        for (i, f) in femtos.iter_mut().enumerate() {
            *f = (ledger.seconds[i] * FEMTOS_PER_SECOND).round() as u128;
        }
        Stats {
            femtos,
            banks: 1,
            dram_read_bytes: u128::from(ledger.dram_read_bytes),
            dram_write_bytes: u128::from(ledger.dram_write_bytes),
            wram_accesses: u128::from(ledger.wram_accesses),
            instructions: u128::from(ledger.instructions),
            host_bytes: u128::from(ledger.host_bytes),
            host_ops: u128::from(ledger.host_ops),
        }
    }

    /// Ingests one ledger as a **phase** rather than a bank profile: the
    /// femtosecond quantization and counters are identical to
    /// [`Stats::from_ledger`], but `banks()` stays 0. System-level phases
    /// (the rank-bus contention term, host transfer epochs) merge into a
    /// bank aggregate without inflating its profile count, so
    /// `stats.banks()` keeps meaning "bank ledgers merged".
    ///
    /// # Examples
    ///
    /// ```
    /// use pim_sim::{Category, CycleLedger, Stats};
    ///
    /// let mut ledger = CycleLedger::new();
    /// ledger.charge(Category::HostTransfer, 1e-6);
    /// let phase = Stats::from_phase_ledger(&ledger);
    /// assert_eq!(phase.banks(), 0);
    /// assert_eq!(phase.femtoseconds(Category::HostTransfer), 1_000_000_000);
    /// ```
    #[must_use]
    pub fn from_phase_ledger(ledger: &CycleLedger) -> Self {
        let mut stats = Self::from_ledger(ledger);
        stats.banks = 0;
        stats
    }

    /// Merges another aggregate into this one. Pure integer addition, so
    /// the operation is exactly associative and commutative.
    pub fn merge(&mut self, other: &Stats) {
        for i in 0..N_CATEGORIES {
            self.femtos[i] += other.femtos[i];
        }
        self.banks += other.banks;
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.wram_accesses += other.wram_accesses;
        self.instructions += other.instructions;
        self.host_bytes += other.host_bytes;
        self.host_ops += other.host_ops;
    }

    /// Consuming form of [`Stats::merge`] for fold-style use.
    #[must_use]
    pub fn merged(mut self, other: &Stats) -> Stats {
        self.merge(other);
        self
    }

    /// Number of profiles merged into this aggregate (0 for the identity).
    #[must_use]
    pub fn banks(&self) -> u64 {
        self.banks
    }

    /// Simulated femtoseconds charged to `category`.
    #[must_use]
    pub fn femtoseconds(&self, category: Category) -> u128 {
        self.femtos[category.index()]
    }

    /// Simulated seconds charged to `category` (converted back from the
    /// exact femtosecond count).
    #[must_use]
    pub fn seconds(&self, category: Category) -> f64 {
        self.femtos[category.index()] as f64 / FEMTOS_PER_SECOND
    }

    /// Total simulated seconds across all categories, summed exactly in
    /// femtoseconds first.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.femtos.iter().sum::<u128>() as f64 / FEMTOS_PER_SECOND
    }
}

/// A plain-data snapshot of a [`Stats`] aggregate: the exact integer
/// femtosecond ledger plus the merged event counters, with no behavior
/// attached.
///
/// This is the export surface for measurement harnesses (the `bench`
/// crate's scenario reports): everything is public, integer, and ordered,
/// so a snapshot can be serialized deterministically and compared across
/// runs without touching floating point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Number of profiles merged into the aggregate.
    pub banks: u64,
    /// Total simulated femtoseconds across all categories (exact sum).
    pub total_femtos: u128,
    /// Per-category simulated femtoseconds, non-zero entries only, in
    /// [`Category::ALL`] display order.
    pub category_femtos: Vec<(Category, u128)>,
    /// Bytes read from DRAM banks.
    pub dram_read_bytes: u128,
    /// Bytes written to DRAM banks.
    pub dram_write_bytes: u128,
    /// WRAM accesses.
    pub wram_accesses: u128,
    /// Instructions retired by DPU cores.
    pub instructions: u128,
    /// Bytes moved over the host link.
    pub host_bytes: u128,
    /// Host-side scalar operations.
    pub host_ops: u128,
}

impl Stats {
    /// Exports the aggregate as a [`CounterSnapshot`] — the deterministic,
    /// integer-only view a perf harness records.
    ///
    /// # Examples
    ///
    /// ```
    /// use pim_sim::{Category, CycleLedger, Profile, Stats};
    ///
    /// let mut ledger = CycleLedger::new();
    /// ledger.charge(Category::Compute, 1.5e-9);
    /// ledger.instructions = 42;
    /// let snap = Stats::from_ledger(&ledger).snapshot();
    /// assert_eq!(snap.banks, 1);
    /// assert_eq!(snap.total_femtos, 1_500_000);
    /// assert_eq!(snap.category_femtos, vec![(Category::Compute, 1_500_000)]);
    /// assert_eq!(snap.instructions, 42);
    /// ```
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            banks: self.banks,
            total_femtos: self.femtos.iter().sum(),
            category_femtos: Category::ALL
                .iter()
                .map(|&c| (c, self.femtos[c.index()]))
                .filter(|&(_, f)| f > 0)
                .collect(),
            dram_read_bytes: self.dram_read_bytes,
            dram_write_bytes: self.dram_write_bytes,
            wram_accesses: self.wram_accesses,
            instructions: self.instructions,
            host_bytes: self.host_bytes,
            host_ops: self.host_ops,
        }
    }

    /// Rebuilds the aggregate a [`CounterSnapshot`] was exported from —
    /// the exact inverse of [`Stats::snapshot`], since a snapshot omits
    /// only categories whose femtosecond count is zero. This is the
    /// ingest half of any serialization boundary (a snapshot is plain
    /// data; `Stats` is the mergeable aggregate).
    ///
    /// # Examples
    ///
    /// ```
    /// use pim_sim::{Category, CycleLedger, Stats};
    ///
    /// let mut ledger = CycleLedger::new();
    /// ledger.charge(Category::Compute, 2.5e-9);
    /// ledger.host_ops = 3;
    /// let stats = Stats::from_ledger(&ledger);
    /// assert_eq!(Stats::from_snapshot(&stats.snapshot()), stats);
    /// ```
    #[must_use]
    pub fn from_snapshot(snap: &CounterSnapshot) -> Stats {
        let mut femtos = [0u128; N_CATEGORIES];
        for &(category, f) in &snap.category_femtos {
            femtos[category.index()] = f;
        }
        Stats {
            femtos,
            banks: snap.banks,
            dram_read_bytes: snap.dram_read_bytes,
            dram_write_bytes: snap.dram_write_bytes,
            wram_accesses: snap.wram_accesses,
            instructions: snap.instructions,
            host_bytes: snap.host_bytes,
            host_ops: snap.host_ops,
        }
    }
}

impl Category {
    /// Parses a category from its [`Category::label`] string (the inverse
    /// of `label`, used when reading serialized snapshots back).
    #[must_use]
    pub fn from_label(label: &str) -> Option<Category> {
        Category::ALL.into_iter().find(|c| c.label() == label)
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} bank profile(s), total {:.6e} s",
            self.banks,
            self.total_seconds()
        )?;
        for c in Category::ALL {
            if self.femtos[c.index()] > 0 {
                writeln!(f, "  {:<18} {:>12.6e} s", c.label(), self.seconds(c))?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total: {:.6e} s", self.total_seconds())?;
        for (cat, secs) in self.ledger.iter() {
            writeln!(
                f,
                "  {:<18} {:>12.6e} s ({:>5.1}%)",
                cat.label(),
                secs,
                100.0 * self.fraction(cat)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let mut l = CycleLedger::new();
        l.charge(Category::LutLoad, 1.0);
        l.charge(Category::Accumulate, 2.0);
        l.charge(Category::Accumulate, 0.5);
        assert_eq!(l.seconds(Category::LutLoad), 1.0);
        assert_eq!(l.seconds(Category::Accumulate), 2.5);
        assert_eq!(l.total_seconds(), 3.5);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = CycleLedger::new();
        a.charge(Category::Compute, 1.0);
        a.dram_read_bytes = 100;
        a.instructions = 7;
        let mut b = CycleLedger::new();
        b.charge(Category::Compute, 2.0);
        b.charge(Category::Other, 1.0);
        b.dram_read_bytes = 11;
        b.host_ops = 3;
        a.merge(&b);
        assert_eq!(a.seconds(Category::Compute), 3.0);
        assert_eq!(a.seconds(Category::Other), 1.0);
        assert_eq!(a.dram_read_bytes, 111);
        assert_eq!(a.instructions, 7);
        assert_eq!(a.host_ops, 3);
    }

    #[test]
    fn scale_multiplies() {
        let mut l = CycleLedger::new();
        l.charge(Category::IndexCalc, 0.25);
        l.wram_accesses = 4;
        l.scale(8);
        assert_eq!(l.seconds(Category::IndexCalc), 2.0);
        assert_eq!(l.wram_accesses, 32);
    }

    #[test]
    fn profile_fraction_and_display() {
        let mut l = CycleLedger::new();
        l.charge(Category::LutLoad, 1.0);
        l.charge(Category::CanonicalLookup, 3.0);
        let p = Profile::from_ledger(l);
        assert!((p.fraction(Category::CanonicalLookup) - 0.75).abs() < 1e-12);
        let text = p.to_string();
        assert!(text.contains("canonical-lookup"));
        assert!(text.contains("lut-load"));
    }

    #[test]
    fn empty_profile_fraction_is_zero() {
        let p = Profile::new();
        assert_eq!(p.fraction(Category::LutLoad), 0.0);
        assert_eq!(p.total_seconds(), 0.0);
    }

    #[test]
    fn iter_skips_zero_categories() {
        let mut l = CycleLedger::new();
        l.charge(Category::Compute, 1.0);
        let cats: Vec<_> = l.iter().map(|(c, _)| c).collect();
        assert_eq!(cats, vec![Category::Compute]);
    }

    fn stats_with(pairs: &[(Category, f64)], instrs: u64) -> Stats {
        let mut l = CycleLedger::new();
        for &(c, s) in pairs {
            l.charge(c, s);
        }
        l.instructions = instrs;
        Stats::from_ledger(&l)
    }

    #[test]
    fn stats_merge_is_associative_and_commutative() {
        // Seconds chosen so f64 addition would NOT be associative.
        let a = stats_with(&[(Category::Compute, 0.1)], 1);
        let b = stats_with(&[(Category::Compute, 0.2)], 10);
        let c = stats_with(&[(Category::Compute, 0.3), (Category::Other, 1e-9)], 100);
        let left = a.clone().merged(&b).merged(&c);
        let right = a.clone().merged(&b.clone().merged(&c));
        assert_eq!(left, right);
        assert_eq!(a.clone().merged(&b), b.clone().merged(&a));
        assert_eq!(left.banks(), 3);
        assert_eq!(left.instructions, 111);
        // Identity element.
        assert_eq!(a.clone().merged(&Stats::default()), a);
    }

    #[test]
    fn phase_ledgers_merge_without_counting_as_banks() {
        let bank = stats_with(&[(Category::Compute, 0.5)], 10);
        let mut phase_ledger = CycleLedger::new();
        phase_ledger.charge(Category::HostTransfer, 0.25);
        phase_ledger.host_bytes = 4096;
        let phase = Stats::from_phase_ledger(&phase_ledger);
        assert_eq!(phase.banks(), 0);
        let merged = bank.clone().merged(&phase);
        assert_eq!(merged.banks(), 1); // still one bank profile
        assert_eq!(
            merged.femtoseconds(Category::HostTransfer),
            250_000_000_000_000
        );
        assert_eq!(merged.host_bytes, 4096);
        // Apart from the bank count, a phase carries the same quantized
        // ledger a bank ingest would.
        let as_bank = Stats::from_ledger(&phase_ledger);
        assert_eq!(
            phase.femtoseconds(Category::HostTransfer),
            as_bank.femtoseconds(Category::HostTransfer)
        );
    }

    #[test]
    fn merge_from_equals_merged() {
        let mut l1 = CycleLedger::new();
        l1.charge(Category::Compute, 0.5);
        l1.instructions = 3;
        let mut l2 = CycleLedger::new();
        l2.charge(Category::LutLoad, 0.25);
        l2.dram_read_bytes = 64;
        let a = Profile::from_ledger(l1);
        let b = Profile::from_ledger(l2);
        let mut in_place = a.clone();
        in_place.merge_from(&b);
        assert_eq!(in_place, a.merged(&b));
    }

    #[test]
    fn stats_roundtrips_seconds_within_quantum() {
        let s = stats_with(&[(Category::LutLoad, 1.36e-9)], 0);
        assert!((s.seconds(Category::LutLoad) - 1.36e-9).abs() < 1e-15);
        assert_eq!(s.femtoseconds(Category::LutLoad), 1_360_000);
        assert!((s.total_seconds() - 1.36e-9).abs() < 1e-15);
    }

    #[test]
    fn stats_display_lists_nonzero_categories() {
        let s = stats_with(&[(Category::Accumulate, 2.0)], 0);
        let text = s.to_string();
        assert!(text.contains("accumulate"));
        assert!(!text.contains("lut-load"));
        assert!(text.contains("1 bank profile(s)"));
    }

    #[test]
    fn snapshot_mirrors_the_aggregate_exactly() {
        let a = stats_with(&[(Category::Compute, 0.25), (Category::LutLoad, 1e-12)], 9);
        let b = stats_with(&[(Category::Compute, 0.5)], 1);
        let merged = a.merged(&b);
        let snap = merged.snapshot();
        assert_eq!(snap.banks, 2);
        assert_eq!(snap.instructions, 10);
        assert_eq!(
            snap.total_femtos,
            merged.femtoseconds(Category::Compute) + merged.femtoseconds(Category::LutLoad)
        );
        // Non-zero categories only, in display order.
        assert_eq!(
            snap.category_femtos,
            vec![
                (Category::LutLoad, 1_000),
                (Category::Compute, 750_000_000_000_000),
            ]
        );
        // The empty aggregate snapshots to the empty snapshot.
        assert_eq!(Stats::default().snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn snapshot_roundtrips_through_from_snapshot() {
        let merged = stats_with(&[(Category::Compute, 0.25), (Category::LutLoad, 1e-12)], 9)
            .merged(&stats_with(&[(Category::HostTransfer, 0.5)], 1));
        assert_eq!(Stats::from_snapshot(&merged.snapshot()), merged);
        // The identity element round-trips too.
        assert_eq!(
            Stats::from_snapshot(&CounterSnapshot::default()),
            Stats::default()
        );
    }

    #[test]
    fn category_labels_roundtrip() {
        for c in Category::ALL {
            assert_eq!(Category::from_label(c.label()), Some(c));
        }
        assert_eq!(Category::from_label("not-a-category"), None);
    }

    #[test]
    fn all_categories_have_unique_indices() {
        let mut seen = std::collections::HashSet::new();
        for c in Category::ALL {
            assert!(seen.insert(c.index()), "duplicate index for {c:?}");
        }
        assert_eq!(seen.len(), N_CATEGORIES);
    }
}
