//! System-level model: ranks × banks of DPUs behind a host CPU.
//!
//! UPMEM systems hang PIM DIMMs off ordinary DDR4 channels; all inter-bank
//! communication travels through the host (§V-B, ref \[67\]). We model:
//!
//! * **host → PIM broadcast** (same bytes to every DPU, e.g. LUT images),
//! * **host → PIM scatter** (distinct slice per DPU, e.g. activation tiles),
//! * **PIM → host gather** (outputs),
//! * **host compute** (quantization, sorting/packing, softmax, ...),
//!
//! and combine them with the per-DPU kernel time. Kernels simulate one
//! representative DPU (the workload is balanced by construction — data and
//! context parallelism split identical tiles across banks, §V-B), so system
//! time = host phases + slowest (= representative) DPU time.

use crate::stats::{Category, CycleLedger, Profile};
use crate::SimError;

/// Static description of the PIM system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of ranks (UPMEM server in the paper: 32).
    pub n_ranks: u32,
    /// DPUs (banks) per rank (UPMEM: 64).
    pub dpus_per_rank: u32,
    /// Effective host→PIM broadcast bandwidth in bytes/s. Broadcasts are
    /// rank-parallel on UPMEM, so this is high (~16 GB/s across 8 channels).
    pub broadcast_bytes_per_sec: f64,
    /// Effective host→PIM scatter (distinct data per DPU) bandwidth in
    /// bytes/s of *aggregate* payload.
    pub scatter_bytes_per_sec: f64,
    /// Effective PIM→host gather bandwidth in bytes/s (UPMEM reads are
    /// slower than writes).
    pub gather_bytes_per_sec: f64,
    /// Host scalar-op throughput in ops/s (multicore Xeon performing
    /// quantization, sorting, packing; ~10 Gop/s sustained).
    pub host_ops_per_sec: f64,
    /// Sustained bandwidth of **one rank's** host link in bytes/s. Every
    /// byte entering or leaving any bank of a rank crosses this shared
    /// bus (UPMEM has no inter-bank path), so a rank whose banks move
    /// more data than its siblings becomes the transfer bottleneck — the
    /// rank-bus contention the aggregate scatter/gather numbers above
    /// average away.
    pub rank_link_bytes_per_sec: f64,
}

impl SystemConfig {
    /// The paper's evaluation platform: 32 ranks × 64 DPUs = 2048 DPUs
    /// behind an Intel Xeon Gold 5215.
    #[must_use]
    pub fn upmem_server() -> Self {
        SystemConfig {
            n_ranks: 32,
            dpus_per_rank: 64,
            broadcast_bytes_per_sec: 16.0e9,
            scatter_bytes_per_sec: 12.0e9,
            gather_bytes_per_sec: 8.0e9,
            host_ops_per_sec: 10.0e9,
            rank_link_bytes_per_sec: 1.6e9,
        }
    }

    /// Total number of DPUs.
    #[must_use]
    pub fn n_dpus(&self) -> u32 {
        self.n_ranks * self.dpus_per_rank
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::upmem_server()
    }
}

/// The PIM system: topology + host link model.
#[derive(Debug, Clone, Default)]
pub struct PimSystem {
    cfg: SystemConfig,
}

/// A system-level execution profile: host-side and PIM-side ledgers.
///
/// Host and PIM phases are serial on UPMEM (synchronous kernel launches),
/// so the total is the sum of both sides.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SystemProfile {
    /// Host-side time/events (transfers, quantization, sorting, ...).
    pub host: Profile,
    /// Per-DPU (representative bank) time/events.
    pub pim: Profile,
}

impl SystemProfile {
    /// Total end-to-end seconds (host phases + PIM phases, serialized).
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.host.total_seconds() + self.pim.total_seconds()
    }

    /// Serial composition.
    #[must_use]
    pub fn merged(&self, other: &SystemProfile) -> SystemProfile {
        SystemProfile {
            host: self.host.merged(&other.host),
            pim: self.pim.merged(&other.pim),
        }
    }

    /// Scales both sides by `n` repetitions.
    #[must_use]
    pub fn scaled(&self, n: u64) -> SystemProfile {
        SystemProfile {
            host: self.host.scaled(n),
            pim: self.pim.scaled(n),
        }
    }
}

impl PimSystem {
    /// Creates a system from a configuration.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidConfig`] when the topology is empty or a bandwidth
    /// is non-positive.
    pub fn new(cfg: SystemConfig) -> Result<Self, SimError> {
        if cfg.n_ranks == 0 || cfg.dpus_per_rank == 0 {
            return Err(SimError::InvalidConfig(
                "system must have at least one DPU".into(),
            ));
        }
        if cfg.broadcast_bytes_per_sec <= 0.0
            || cfg.scatter_bytes_per_sec <= 0.0
            || cfg.gather_bytes_per_sec <= 0.0
            || cfg.host_ops_per_sec <= 0.0
            || cfg.rank_link_bytes_per_sec <= 0.0
        {
            return Err(SimError::InvalidConfig(
                "bandwidths and host throughput must be positive".into(),
            ));
        }
        Ok(PimSystem { cfg })
    }

    /// The paper's 2048-DPU UPMEM server.
    #[must_use]
    pub fn upmem_server() -> Self {
        PimSystem {
            cfg: SystemConfig::upmem_server(),
        }
    }

    /// System configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Seconds to broadcast `bytes` (same payload) to every DPU.
    #[must_use]
    pub fn broadcast_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.cfg.broadcast_bytes_per_sec
    }

    /// Seconds to scatter `total_bytes` of distinct per-DPU payloads.
    #[must_use]
    pub fn scatter_seconds(&self, total_bytes: u64) -> f64 {
        total_bytes as f64 / self.cfg.scatter_bytes_per_sec
    }

    /// Seconds to gather `total_bytes` of results back to the host.
    #[must_use]
    pub fn gather_seconds(&self, total_bytes: u64) -> f64 {
        total_bytes as f64 / self.cfg.gather_bytes_per_sec
    }

    /// Seconds for `ops` host scalar operations.
    #[must_use]
    pub fn host_ops_seconds(&self, ops: u64) -> f64 {
        ops as f64 / self.cfg.host_ops_per_sec
    }

    /// Seconds for one rank's host link to move `bytes`.
    #[must_use]
    pub fn rank_link_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.cfg.rank_link_bytes_per_sec
    }

    /// The rank-bus contention phase for one execution epoch: each entry
    /// of `per_rank_bytes` is the total byte volume one rank's banks
    /// moved. Ranks transfer in parallel, but a rank's banks share its
    /// link, so the epoch's occupancy is the **slowest** (busiest) rank's
    /// link time — the bottleneck term a flat aggregate-bandwidth model
    /// misses when tiles are ragged across ranks.
    ///
    /// The returned profile charges the occupancy to
    /// [`Category::HostTransfer`] and records the fleet-wide byte total
    /// in `host_bytes`. An empty or all-zero input yields an empty phase.
    ///
    /// # Examples
    ///
    /// ```
    /// use pim_sim::{Category, PimSystem};
    ///
    /// let sys = PimSystem::upmem_server();
    /// let phase = sys.rank_link_profile(&[1000, 4000, 2000]);
    /// // The busiest rank (4000 B) bounds the epoch...
    /// assert!((phase.seconds(Category::HostTransfer)
    ///     - sys.rank_link_seconds(4000)).abs() < 1e-18);
    /// // ...while the counter records everything that moved.
    /// assert_eq!(phase.ledger().host_bytes, 7000);
    /// ```
    #[must_use]
    pub fn rank_link_profile(&self, per_rank_bytes: &[u64]) -> Profile {
        let mut ledger = CycleLedger::new();
        let busiest = per_rank_bytes.iter().copied().max().unwrap_or(0);
        ledger.charge(Category::HostTransfer, self.rank_link_seconds(busiest));
        ledger.host_bytes = per_rank_bytes.iter().sum();
        Profile::from_ledger(ledger)
    }

    /// Builds a host-side ledger for one transfer + compute phase.
    #[must_use]
    pub fn host_phase(
        &self,
        broadcast_bytes: u64,
        scatter_bytes: u64,
        gather_bytes: u64,
        host_ops: u64,
    ) -> Profile {
        let mut ledger = CycleLedger::new();
        let xfer = self.broadcast_seconds(broadcast_bytes)
            + self.scatter_seconds(scatter_bytes)
            + self.gather_seconds(gather_bytes);
        ledger.charge(Category::HostTransfer, xfer);
        ledger.charge(Category::HostCompute, self.host_ops_seconds(host_ops));
        ledger.host_bytes = broadcast_bytes + scatter_bytes + gather_bytes;
        ledger.host_ops = host_ops;
        Profile::from_ledger(ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upmem_server_has_2048_dpus() {
        assert_eq!(SystemConfig::upmem_server().n_dpus(), 2048);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = SystemConfig::upmem_server();
        cfg.n_ranks = 0;
        assert!(PimSystem::new(cfg).is_err());
        let mut cfg = SystemConfig::upmem_server();
        cfg.gather_bytes_per_sec = 0.0;
        assert!(PimSystem::new(cfg).is_err());
    }

    #[test]
    fn transfer_times_scale_linearly() {
        let sys = PimSystem::upmem_server();
        let one = sys.scatter_seconds(1_000_000);
        let ten = sys.scatter_seconds(10_000_000);
        assert!((ten - 10.0 * one).abs() < 1e-12);
        assert!(sys.gather_seconds(1 << 20) > sys.broadcast_seconds(1 << 20));
    }

    #[test]
    fn rank_link_bottleneck_is_the_busiest_rank() {
        let sys = PimSystem::upmem_server();
        let phase = sys.rank_link_profile(&[100, 900, 500, 900]);
        assert!((phase.seconds(Category::HostTransfer) - sys.rank_link_seconds(900)).abs() < 1e-18);
        assert_eq!(phase.ledger().host_bytes, 2400);
        // Degenerate inputs yield an empty phase.
        assert_eq!(sys.rank_link_profile(&[]).total_seconds(), 0.0);
        assert_eq!(sys.rank_link_profile(&[0, 0]).total_seconds(), 0.0);
    }

    #[test]
    fn rank_link_bandwidth_must_be_positive() {
        let mut cfg = SystemConfig::upmem_server();
        cfg.rank_link_bytes_per_sec = 0.0;
        assert!(PimSystem::new(cfg).is_err());
    }

    #[test]
    fn host_phase_ledger_accounts_events() {
        let sys = PimSystem::upmem_server();
        let p = sys.host_phase(1000, 2000, 3000, 500);
        assert_eq!(p.ledger().host_bytes, 6000);
        assert_eq!(p.ledger().host_ops, 500);
        assert!(p.seconds(Category::HostTransfer) > 0.0);
        assert!(p.seconds(Category::HostCompute) > 0.0);
    }

    #[test]
    fn system_profile_total_is_serial_sum() {
        let sys = PimSystem::upmem_server();
        let host = sys.host_phase(1 << 20, 0, 0, 0);
        let mut pim_ledger = CycleLedger::new();
        pim_ledger.charge(Category::Compute, 0.5);
        let sp = SystemProfile {
            host: host.clone(),
            pim: Profile::from_ledger(pim_ledger),
        };
        assert!((sp.total_seconds() - (host.total_seconds() + 0.5)).abs() < 1e-12);
        let doubled = sp.scaled(2);
        assert!((doubled.total_seconds() - 2.0 * sp.total_seconds()).abs() < 1e-12);
    }

    #[test]
    fn merged_profiles_add() {
        let sys = PimSystem::upmem_server();
        let a = SystemProfile {
            host: sys.host_phase(100, 0, 0, 0),
            pim: Profile::new(),
        };
        let b = a.clone();
        let m = a.merged(&b);
        assert!((m.total_seconds() - 2.0 * a.total_seconds()).abs() < 1e-15);
    }
}
