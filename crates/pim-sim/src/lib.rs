//! # pim-sim — a cost-calibrated functional DRAM-PIM simulator
//!
//! This crate is the hardware substrate for the LoCaLUT reproduction. The
//! paper evaluates on a real UPMEM server (32 ranks of PIM-enabled DIMMs,
//! 2048 DPUs); we do not have that hardware, so this crate models it:
//!
//! * [`DramBank`] — a 64 MB DRAM bank with a row buffer and a streaming
//!   DRAM→WRAM DMA engine (0.5 B/cycle at 350 MHz, three-stage pipelined
//!   access — the constants the paper profiles in §VI-I).
//! * [`Wram`] — the 64 KB SRAM local buffer with single-cycle access and a
//!   region allocator (LUTs, tiles, and scratch must all fit).
//! * [`Processor`] — the in-order DPU core modelled by an instruction cost
//!   table (UPMEM DPUs have no hardware 32-bit multiplier; 8-bit multiplies
//!   are native, wider ones are multi-instruction).
//! * [`Dpu`] — one bank + WRAM + core, with a per-category cycle ledger so
//!   kernels can report the breakdowns of Fig. 16.
//! * [`PimSystem`] — ranks × banks topology with a host link model
//!   (broadcast/scatter/gather through the host, as UPMEM requires).
//! * [`EnergyModel`] — per-event energies turning a ledger into Joules
//!   (Fig. 14, Fig. 17b).
//! * [`banklevel`] — the accelerator-style bank-level PIM models (HBM-PIM
//!   SIMD vs. LUT-unit PIM) used by §VI-K (Fig. 20, Fig. 21).
//!
//! The simulator is *functional + timed*: kernels built on top of it compute
//! real results while charging simulated time into a [`CycleLedger`]. Time is
//! tracked in seconds (f64) because the paper's calibrated constants
//! (`L_D = 1.36e-9 s`, `L_local = 3.27e-8 s`) are sub-cycle when expressed at
//! the 350 MHz DPU clock.
//!
//! ## Example
//!
//! ```
//! use pim_sim::{Dpu, DpuConfig, Category};
//!
//! let mut dpu = Dpu::new(DpuConfig::upmem());
//! // Stream a 4 KiB weight tile from the DRAM bank into WRAM.
//! let region = dpu.wram_alloc("wtile", 4096).unwrap();
//! dpu.charge_dram_stream(4096, Category::DataTransfer);
//! // Perform 1000 lookup+accumulate composites (12 instructions each).
//! dpu.charge_lookup_accum(1000);
//! let profile = dpu.profile();
//! assert!(profile.total_seconds() > 0.0);
//! assert!(profile.seconds(Category::Accumulate) > 0.0);
//! drop(region);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banklevel;
pub mod dpu;
pub mod dram;
pub mod energy;
pub mod processor;
pub mod stats;
pub mod system;
pub mod timing;
pub mod trace;
pub mod wram;

pub use dpu::{Dpu, DpuConfig};
pub use dram::DramBank;
pub use energy::{EnergyBreakdown, EnergyModel};
pub use processor::{InstrClass, Processor};
pub use stats::{Category, CounterSnapshot, CycleLedger, Profile, Stats};
pub use system::{PimSystem, SystemConfig, SystemProfile};
pub use timing::DpuTimings;
pub use trace::{Trace, TraceEvent, TraceKind};
pub use wram::{Wram, WramError, WramRegion};

/// Errors produced by the simulator's fallible operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A WRAM allocation failed (requested bytes, available bytes).
    WramExhausted {
        /// Bytes requested by the allocation.
        requested: u64,
        /// Bytes still available in WRAM.
        available: u64,
    },
    /// A DRAM bank placement failed (requested bytes, bank capacity).
    BankExhausted {
        /// Bytes requested.
        requested: u64,
        /// Bytes available in the bank.
        available: u64,
    },
    /// Configuration was invalid (e.g. zero DPUs).
    InvalidConfig(String),
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::WramExhausted {
                requested,
                available,
            } => write!(
                f,
                "wram allocation of {requested} bytes exceeds {available} available"
            ),
            SimError::BankExhausted {
                requested,
                available,
            } => write!(
                f,
                "bank placement of {requested} bytes exceeds {available} available"
            ),
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}
