//! The length-prefixed frame envelope every wire message travels in.
//!
//! A frame is a fixed 12-byte header followed by the payload bytes
//! (compact JSON, see [`crate::wire`]):
//!
//! ```text
//! offset  size  field
//!      0     4  magic     b"LCNS"
//!      4     2  version   big-endian u16, currently 1
//!      6     2  reserved  must be 0
//!      8     4  length    big-endian u32 payload byte count
//!     12     n  payload
//! ```
//!
//! Every malformation maps to a typed [`FrameError`] leaf chained under
//! [`NetError::Frame`]: wrong magic, unknown version, a length above the
//! receiver's cap ([`FrameError::Oversized`] — checked *before* any
//! allocation), and EOF mid-header or mid-payload
//! ([`FrameError::Truncated`]). EOF *between* frames is not an error; it
//! is the normal way a peer closes.
//!
//! [`FrameReader`] is a resumable state machine so the server can read
//! with a socket timeout and poll its drain flag between `poll` calls
//! without losing partial progress; on a plain blocking stream,
//! [`read_frame`] never observes `Pending` and behaves like a simple
//! blocking read.

use engine::{FrameError, NetError};
use std::io::{ErrorKind, Read, Write};

/// The four magic bytes opening every frame ("LoCaLUT Net Serve").
pub const MAGIC: [u8; 4] = *b"LCNS";

/// The frame-envelope version this build speaks.
pub const VERSION: u16 = 1;

/// Header length in bytes: magic + version + reserved + payload length.
pub const HEADER_LEN: usize = 12;

/// Default cap on payload size (16 MiB) — a wire GEMM of the traffic
/// generator's largest shape is under 100 KiB, so this is generous
/// without letting a hostile length field allocate unboundedly.
pub const DEFAULT_MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Encodes the header for a payload of `len` bytes.
#[must_use]
fn header(len: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(&MAGIC);
    h[4..6].copy_from_slice(&VERSION.to_be_bytes());
    h[8..12].copy_from_slice(&len.to_be_bytes());
    h
}

/// Writes one frame (header + payload) to `w`.
///
/// # Errors
///
/// [`NetError::Protocol`] if the payload exceeds `u32::MAX` bytes;
/// [`NetError::Io`] on any transport failure.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), NetError> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        NetError::Protocol(format!("payload of {} bytes overflows u32", payload.len()))
    })?;
    w.write_all(&header(len))
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| NetError::io("write frame", &e))
}

/// The outcome of a [`FrameReader::poll`].
#[derive(Debug)]
pub enum FramePoll {
    /// A complete payload arrived.
    Frame(Vec<u8>),
    /// The peer closed cleanly at a frame boundary.
    Closed,
    /// The read timed out (or would block) — poll again.
    Pending,
}

/// Phase of the frame currently being assembled.
enum Phase {
    Header,
    Payload,
}

/// A resumable frame decoder: feed it a stream repeatedly; partial reads
/// (timeouts on a socket with `set_read_timeout`) keep their progress.
pub struct FrameReader {
    max_payload: u32,
    phase: Phase,
    buf: Vec<u8>,
    got: usize,
}

impl FrameReader {
    /// A reader enforcing the given payload cap.
    #[must_use]
    pub fn new(max_payload: u32) -> Self {
        FrameReader {
            max_payload,
            phase: Phase::Header,
            buf: vec![0u8; HEADER_LEN],
            got: 0,
        }
    }

    /// True when a frame is partially assembled — a drain should keep
    /// reading rather than cut the peer off mid-message.
    #[must_use]
    pub fn mid_frame(&self) -> bool {
        self.got > 0 || matches!(self.phase, Phase::Payload)
    }

    /// Pumps the reader. Returns [`FramePoll::Frame`] once a whole payload
    /// is in (the reader resets and can decode the next frame),
    /// [`FramePoll::Closed`] on EOF at a frame boundary, and
    /// [`FramePoll::Pending`] when the underlying read timed out.
    ///
    /// # Errors
    ///
    /// Typed [`NetError`]: [`FrameError`] leaves for bad magic, version,
    /// oversized length, or mid-frame EOF; [`NetError::Io`] otherwise.
    pub fn poll(&mut self, r: &mut impl Read) -> Result<FramePoll, NetError> {
        loop {
            while self.got < self.buf.len() {
                match r.read(&mut self.buf[self.got..]) {
                    Ok(0) => {
                        return if self.mid_frame() {
                            let expected = self.buf.len();
                            let got = self.got;
                            self.reset();
                            Err(NetError::Frame(FrameError::Truncated { expected, got }))
                        } else {
                            Ok(FramePoll::Closed)
                        };
                    }
                    Ok(n) => self.got += n,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e)
                        if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
                    {
                        return Ok(FramePoll::Pending);
                    }
                    Err(e) => return Err(NetError::io("read frame", &e)),
                }
            }
            match self.phase {
                Phase::Header => {
                    let len = self.decode_header()?;
                    if len == 0 {
                        self.reset();
                        return Ok(FramePoll::Frame(Vec::new()));
                    }
                    self.phase = Phase::Payload;
                    self.buf = vec![0u8; len as usize];
                    self.got = 0;
                }
                Phase::Payload => {
                    let payload = std::mem::take(&mut self.buf);
                    self.reset();
                    return Ok(FramePoll::Frame(payload));
                }
            }
        }
    }

    fn decode_header(&self) -> Result<u32, NetError> {
        let magic: [u8; 4] = self.buf[..4].try_into().expect("4-byte slice");
        if magic != MAGIC {
            return Err(NetError::Frame(FrameError::BadMagic(magic)));
        }
        let version = u16::from_be_bytes(self.buf[4..6].try_into().expect("2-byte slice"));
        if version != VERSION {
            return Err(NetError::Frame(FrameError::UnsupportedVersion(version)));
        }
        let len = u32::from_be_bytes(self.buf[8..12].try_into().expect("4-byte slice"));
        if len > self.max_payload {
            return Err(NetError::Frame(FrameError::Oversized {
                len,
                max: self.max_payload,
            }));
        }
        Ok(len)
    }

    fn reset(&mut self) {
        self.phase = Phase::Header;
        self.buf = vec![0u8; HEADER_LEN];
        self.got = 0;
    }
}

/// Reads one frame from a blocking stream.
///
/// Returns `Some(payload)` for a frame, `None` for a clean close.
///
/// # Errors
///
/// As [`FrameReader::poll`]. A stream with a read timeout configured can
/// surface spurious timeouts here; this helper loops through them, so use
/// [`FrameReader`] directly when the timeout must be observable.
pub fn read_frame(r: &mut impl Read, max_payload: u32) -> Result<Option<Vec<u8>>, NetError> {
    let mut reader = FrameReader::new(max_payload);
    loop {
        match reader.poll(r)? {
            FramePoll::Frame(payload) => return Ok(Some(payload)),
            FramePoll::Closed => return Ok(None),
            FramePoll::Pending => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut bytes = framed(b"first");
        bytes.extend_from_slice(&framed(b""));
        bytes.extend_from_slice(&framed(b"third"));
        let mut cursor = Cursor::new(bytes);
        assert_eq!(
            read_frame(&mut cursor, 64).unwrap().as_deref(),
            Some(&b"first"[..])
        );
        assert_eq!(
            read_frame(&mut cursor, 64).unwrap().as_deref(),
            Some(&b""[..])
        );
        assert_eq!(
            read_frame(&mut cursor, 64).unwrap().as_deref(),
            Some(&b"third"[..])
        );
        // Clean EOF at the boundary is a close, not an error.
        assert!(read_frame(&mut cursor, 64).unwrap().is_none());
    }

    #[test]
    fn malformed_headers_yield_typed_leaves() {
        let mut bad_magic = framed(b"x");
        bad_magic[0] = b'Z';
        match read_frame(&mut Cursor::new(bad_magic), 64) {
            Err(NetError::Frame(FrameError::BadMagic(m))) => assert_eq!(&m[1..], b"CNS"),
            other => panic!("expected BadMagic, got {other:?}"),
        }

        let mut bad_version = framed(b"x");
        bad_version[5] = 9;
        match read_frame(&mut Cursor::new(bad_version), 64) {
            Err(NetError::Frame(FrameError::UnsupportedVersion(9))) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        // Header claims 1 GiB; cap is 16 bytes. The reader must refuse
        // from the header alone (the payload bytes never exist).
        let mut bytes = header(1 << 30).to_vec();
        bytes.extend_from_slice(b"tiny");
        match read_frame(&mut Cursor::new(bytes), 16) {
            Err(NetError::Frame(FrameError::Oversized { len, max })) => {
                assert_eq!(len, 1 << 30);
                assert_eq!(max, 16);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncation_mid_header_and_mid_payload_is_typed() {
        let full = framed(b"hello world");
        for cut in [1, HEADER_LEN - 1, HEADER_LEN + 3] {
            match read_frame(&mut Cursor::new(full[..cut].to_vec()), 64) {
                Err(NetError::Frame(FrameError::Truncated { expected, got })) => {
                    if cut < HEADER_LEN {
                        assert_eq!((expected, got), (HEADER_LEN, cut));
                    } else {
                        assert_eq!((expected, got), (11, cut - HEADER_LEN));
                    }
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn reader_resumes_across_single_byte_reads() {
        // A reader that trickles one byte per call exercises every resume
        // point in the state machine.
        struct Trickle(Cursor<Vec<u8>>);
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let take = 1.min(buf.len());
                self.0.read(&mut buf[..take])
            }
        }
        let mut t = Trickle(Cursor::new(framed(b"slow")));
        assert_eq!(
            read_frame(&mut t, 64).unwrap().as_deref(),
            Some(&b"slow"[..])
        );
    }

    #[test]
    fn mid_frame_flag_tracks_partial_progress_across_timeouts() {
        // Yields a fixed chunk, then WouldBlock (a socket read timeout),
        // so poll() surfaces Pending with the frame half-assembled.
        struct Chunked {
            data: Vec<u8>,
            pos: usize,
            chunk: usize,
        }
        impl Read for Chunked {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.pos >= self.chunk.min(self.data.len()) {
                    return Err(std::io::Error::from(ErrorKind::WouldBlock));
                }
                let end = self.chunk.min(self.data.len());
                let n = (end - self.pos).min(buf.len());
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }

        let bytes = framed(b"abc");
        let mut reader = FrameReader::new(64);
        assert!(!reader.mid_frame());

        let mut src = Chunked {
            data: bytes.clone(),
            pos: 0,
            chunk: 5, // stalls mid-header
        };
        assert!(matches!(reader.poll(&mut src), Ok(FramePoll::Pending)));
        assert!(reader.mid_frame(), "5 header bytes in: mid-frame");

        src.chunk = bytes.len(); // the rest arrives
        match reader.poll(&mut src) {
            Ok(FramePoll::Frame(p)) => assert_eq!(p, b"abc"),
            other => panic!("expected the completed frame, got {other:?}"),
        }
        assert!(!reader.mid_frame(), "reset after yielding the frame");
    }
}
