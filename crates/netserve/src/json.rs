//! A minimal, dependency-free JSON layer shared by the perf-harness
//! reports and the network wire protocol.
//!
//! The build environment has no registry access, so there is no `serde`;
//! `BENCH_*.json` files and [`crate::wire`] frame payloads instead go
//! through this hand-rolled tree (the `bench` crate re-exports this
//! module, so report code keeps saying `bench::json`). Two properties
//! matter more than generality:
//!
//! * **Deterministic output** — object keys are sorted at write time and
//!   integers are written as exact decimal digits (`u128`-wide, since the
//!   simulated-femtosecond ledger is `u128`), so the same report always
//!   serializes to the same bytes and consecutive baselines diff cleanly.
//!   Wire payloads use the same writer via [`Json::to_compact`], which is
//!   what makes a request log replayable bit for bit.
//! * **Lossless integers** — counters round-trip as integers, never
//!   through `f64` (which loses precision past 2^53). Negative integers
//!   (GEMM output values on the wire) take the [`Json::Int`] path.
//!
//! The parser accepts standard JSON (it tolerates unsorted keys and
//! whitespace); fractional or exponent-bearing numbers parse into
//! [`Json::Float`], which the report schema does not use but a
//! hand-edited file may contain.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (the schema's counters and femtoseconds).
    UInt(u128),
    /// A negative integer, exact (wire-encoded GEMM values can be
    /// negative; they must not detour through `f64`).
    Int(i128),
    /// Any other number (fractional or exponent-bearing).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; `BTreeMap` keeps keys sorted for deterministic writes.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Convenience constructor for an object from `(key, value)` pairs.
    #[must_use]
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// The value at `key` if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The `u128` if this is a [`Json::UInt`].
    #[must_use]
    pub fn as_uint(&self) -> Option<u128> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a signed integer: [`Json::Int`] directly, or a
    /// [`Json::UInt`] that fits in `i128`.
    #[must_use]
    pub fn as_int(&self) -> Option<i128> {
        match self {
            Json::Int(v) => Some(*v),
            Json::UInt(v) => i128::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The string slice if this is a [`Json::Str`].
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element slice if this is a [`Json::Array`].
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation, sorted keys, and a trailing
    /// newline — the canonical on-disk form of `BENCH_*.json`.
    #[must_use]
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes on a single line with no whitespace — the wire-frame and
    /// request-log form. Keys are sorted exactly as in [`Json::to_pretty`],
    /// so compact output is equally deterministic.
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                // `{:?}` prints the shortest f64 representation that
                // round-trips; JSON has no NaN/Inf, so map those to null.
                if v.is_finite() {
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected '{}' at byte {}",
                char::from(other),
                self.pos
            )),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if map.insert(key, value).is_some() {
                return Err(format!("duplicate object key before byte {}", self.pos));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| "bad \\u escape".to_owned())?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape".to_owned())?;
                            // Surrogate pairs are not needed by the schema;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_owned())?;
        if !is_float {
            return if text.starts_with('-') {
                text.parse::<i128>().map(Json::Int)
            } else {
                text.parse::<u128>().map(Json::UInt)
            }
            .map_err(|_| format!("integer out of range at byte {start}"));
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_sorted_keys_deterministically() {
        let v = Json::object(vec![
            ("zulu", Json::UInt(1)),
            ("alpha", Json::Bool(true)),
            ("mike", Json::Str("hi".into())),
        ]);
        let text = v.to_pretty();
        let alpha = text.find("alpha").unwrap();
        let mike = text.find("mike").unwrap();
        let zulu = text.find("zulu").unwrap();
        assert!(alpha < mike && mike < zulu, "keys not sorted:\n{text}");
        assert_eq!(text, v.to_pretty(), "serialization must be deterministic");
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn u128_counters_roundtrip_losslessly() {
        let big = u128::MAX - 7;
        let v = Json::object(vec![("femtos", Json::UInt(big))]);
        let parsed = Json::parse(&v.to_pretty()).unwrap();
        assert_eq!(parsed.get("femtos").unwrap().as_uint(), Some(big));
        // Past 2^53 an f64 path would corrupt this.
        assert!(big > 1u128 << 53);
    }

    #[test]
    fn parse_roundtrips_nested_structures() {
        let v = Json::object(vec![
            (
                "list",
                Json::Array(vec![Json::UInt(1), Json::Null, Json::Bool(false)]),
            ),
            (
                "nested",
                Json::object(vec![("inner", Json::Str("a\"b\\c\nd".into()))]),
            ),
            ("empty_list", Json::Array(vec![])),
            ("empty_obj", Json::Object(BTreeMap::new())),
        ]);
        let parsed = Json::parse(&v.to_pretty()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn parser_accepts_standard_json_variants() {
        let parsed = Json::parse("  {\"b\":2,\"a\":[1.5,-3,2e2]}  ").unwrap();
        assert_eq!(parsed.get("b").unwrap().as_uint(), Some(2));
        let arr = parsed.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0], Json::Float(1.5));
        assert_eq!(arr[1], Json::Int(-3));
        assert_eq!(arr[2], Json::Float(200.0));
    }

    #[test]
    fn negative_integers_roundtrip_exactly() {
        // i128::MIN would corrupt through any f64 path; it must survive.
        let v = Json::Array(vec![Json::Int(-1), Json::Int(i128::MIN)]);
        let parsed = Json::parse(&v.to_pretty()).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.as_array().unwrap()[1].as_int(), Some(i128::MIN));
        // as_int also accepts in-range unsigned values, but not overflow.
        assert_eq!(Json::UInt(7).as_int(), Some(7));
        assert_eq!(Json::UInt(u128::MAX).as_int(), None);
    }

    #[test]
    fn compact_form_is_single_line_sorted_and_reparses() {
        let v = Json::object(vec![
            ("zulu", Json::Array(vec![Json::Int(-2), Json::UInt(3)])),
            ("alpha", Json::object(vec![("k", Json::Str("v\n".into()))])),
            ("empty", Json::Array(vec![])),
        ]);
        let compact = v.to_compact();
        assert!(!compact.contains('\n'), "one line only:\n{compact}");
        assert_eq!(
            compact,
            "{\"alpha\":{\"k\":\"v\\n\"},\"empty\":[],\"zulu\":[-2,3]}"
        );
        assert_eq!(Json::parse(&compact).unwrap(), v);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,\"a\":2}",
            "tru",
            "\"unterminated",
            "{\"a\":1} extra",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn escaped_strings_roundtrip() {
        let s = "tab\there \"quoted\" back\\slash \u{1}";
        let v = Json::Str(s.into());
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
        assert_eq!(Json::parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }
}
