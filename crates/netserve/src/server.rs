//! The TCP front-end: an accept loop mapping connections onto
//! [`engine::serve::Server`] tickets.
//!
//! ## Threading model
//!
//! One nonblocking accept thread polls the listener (and the drain flag)
//! every few milliseconds. Each accepted connection gets a **reader**
//! thread (decodes frames, checks quota, submits tickets) and a
//! **writer** thread (waits on tickets in request order and frames
//! responses back), joined by an in-order channel — so a client may
//! pipeline requests and the serving scheduler still coalesces them into
//! batches across connections.
//!
//! ## Backpressure, quotas, drain
//!
//! * A full submission queue ([`engine::serve::ServeConfig::queue_cap`])
//!   rejects at submit time; the writer relays the typed
//!   [`Rejection::QueueFull`] to the client, which may retry after the
//!   embedded delay. Nothing buffers without bound, nothing hangs.
//! * [`engine::serve::ServeConfig::quota`] caps submissions *per
//!   connection* (a queue-rejected retry counts: the quota budgets
//!   admission attempts, which keeps it checkable before submission).
//! * Drain — via [`NetServer::drain`] or a client's
//!   [`crate::wire::WireRequest::Drain`] — stops the accept loop and stops
//!   readers at their next frame boundary; every already-submitted ticket
//!   still executes and its response is flushed before the connection
//!   closes. A reader stalled mid-frame is given a grace period, then cut.
//!
//! ## The request log
//!
//! With [`NetConfig::log_path`] set, every *executed* request (served or
//! failed — not queue/quota-rejected ones, which never run) is appended
//! as one canonical compact-JSON line. Replaying the file through
//! [`engine::serve::replay_serial`] reproduces the server's final
//! [`engine::ServeSummary`] bit for bit; the multi-process tests and the
//! CI smoke step both pin that.

use crate::frame::{write_frame, FramePoll, FrameReader, DEFAULT_MAX_PAYLOAD};
use crate::wire::{self, WireRequest, WireResponse};
use engine::serve::{ServeConfig, RETRY_AFTER_MS};
use engine::{
    Engine, EngineError, GemmResponse, InferenceResponse, NetError, Rejection, ServeReport, Server,
    SessionResponse, Ticket,
};
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a reader waits on the socket before re-checking the drain
/// flag.
const READ_POLL: Duration = Duration::from_millis(25);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Grace polls a reader stalled mid-frame gets during a drain before the
/// connection is cut (~2 s at [`READ_POLL`]).
const DRAIN_GRACE_POLLS: u32 = 80;

/// Network-layer knobs (the serving knobs live in [`ServeConfig`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Cap on a single frame payload; oversized frames are rejected from
    /// the header alone.
    pub max_payload: u32,
    /// Cap on concurrent connections; excess connections receive a typed
    /// rejection frame and are closed.
    pub max_connections: usize,
    /// Append every executed request as one compact JSON line here.
    pub log_path: Option<PathBuf>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_payload: DEFAULT_MAX_PAYLOAD,
            max_connections: 64,
            log_path: None,
        }
    }
}

/// What the front-end observed over its lifetime, on top of the serving
/// scheduler's own [`ServeReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct NetReport {
    /// The underlying scheduler's report (its `summary` is the
    /// deterministic surface).
    pub serve: ServeReport,
    /// Connections accepted (including ones later rejected for capacity).
    pub connections: u64,
    /// Requests refused because the per-connection quota was spent.
    pub rejected_quota: u64,
    /// Connections refused because `max_connections` was reached.
    pub rejected_capacity: u64,
    /// Connections dropped after malformed frames or payloads.
    pub protocol_errors: u64,
}

#[derive(Debug, Default)]
struct Counters {
    connections: u64,
    rejected_quota: u64,
    rejected_capacity: u64,
    protocol_errors: u64,
}

struct NetShared {
    serve: Server,
    stop: AtomicBool,
    quota: Option<u64>,
    max_payload: u32,
    max_connections: usize,
    counters: Mutex<Counters>,
    log: Option<Mutex<BufWriter<File>>>,
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl NetShared {
    fn log_line(&self, line: &str) {
        if let Some(log) = &self.log {
            let mut w = lock(log);
            let _ = w.write_all(line.as_bytes());
            let _ = w.write_all(b"\n");
        }
    }
}

/// What the writer thread owes the client, in request order.
enum Reply {
    /// An already-encoded immediate response (pong, rejection, error).
    Now(Box<WireResponse>),
    /// A pending GEMM: log line to append once the ticket resolves
    /// non-rejected, plus the ticket.
    Gemm(String, Ticket<GemmResponse>),
    /// A pending inference request, same contract.
    Infer(String, Ticket<InferenceResponse>),
    /// A pending decoder session (served with continuous batching), same
    /// contract.
    Session(String, Ticket<SessionResponse>),
}

/// The TCP serving front-end. Bind it, let clients hammer it, then
/// [`NetServer::join`] (local drain) or [`NetServer::wait`] (block until
/// a client sends `Drain`) to collect the final [`NetReport`].
pub struct NetServer {
    shared: Arc<NetShared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Starts a serving scheduler over `engine` and binds the front-end
    /// to `addr` (use port 0 to let the OS pick; see
    /// [`NetServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::Net`] when binding the listener or creating the
    /// request log fails.
    pub fn bind(
        engine: Arc<Engine>,
        serve_config: &ServeConfig,
        net_config: &NetConfig,
        addr: impl ToSocketAddrs,
    ) -> Result<NetServer, EngineError> {
        let listener = TcpListener::bind(addr).map_err(|e| NetError::io("bind", &e))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::io("set nonblocking", &e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| NetError::io("local addr", &e))?;
        let log = match &net_config.log_path {
            Some(path) => Some(Mutex::new(BufWriter::new(File::create(path).map_err(
                |e| NetError::io(&format!("create request log {}", path.display()), &e),
            )?))),
            None => None,
        };
        let shared = Arc::new(NetShared {
            serve: Server::start(engine, serve_config),
            stop: AtomicBool::new(false),
            quota: serve_config.quota(),
            max_payload: net_config.max_payload,
            max_connections: net_config.max_connections.max(1),
            counters: Mutex::new(Counters::default()),
            log,
        });
        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };
        Ok(NetServer {
            shared,
            local_addr,
            accept: Some(accept),
        })
    }

    /// The bound address (the resolved port when bound to port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Begins a graceful drain: stop accepting connections and new
    /// requests; in-flight tickets keep executing.
    pub fn drain(&self) {
        self.shared.stop.store(true, Ordering::Relaxed);
    }

    /// True once a drain has begun (locally or via a client).
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.stop.load(Ordering::Relaxed)
    }

    /// The deterministic summary so far (point-in-time).
    #[must_use]
    pub fn summary(&self) -> engine::ServeSummary {
        self.shared.serve.summary()
    }

    /// Drains locally and collects the final report: joins the accept
    /// loop, every connection, and the serving workers; flushes the
    /// request log.
    #[must_use]
    pub fn join(self) -> NetReport {
        self.drain();
        self.finalize()
    }

    /// Blocks until a drain is triggered — typically by a client's
    /// `Drain` frame — then collects exactly as [`NetServer::join`]. This
    /// is the daemon's main loop.
    #[must_use]
    pub fn wait(self) -> NetReport {
        self.finalize()
    }

    fn finalize(mut self) -> NetReport {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| panic!("all connection threads joined with the accept loop"));
        let counters = shared
            .counters
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(log) = shared.log {
            let mut w = log.into_inner().unwrap_or_else(PoisonError::into_inner);
            let _ = w.flush();
        }
        NetReport {
            serve: shared.serve.join(),
            connections: counters.connections,
            rejected_quota: counters.rejected_quota,
            rejected_capacity: counters.rejected_capacity,
            protocol_errors: counters.protocol_errors,
        }
    }
}

fn accept_loop(shared: &Arc<NetShared>, listener: &TcpListener) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                conns.retain(|h| !h.is_finished());
                lock(&shared.counters).connections += 1;
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                if conns.len() >= shared.max_connections {
                    lock(&shared.counters).rejected_capacity += 1;
                    reject_connection(stream, shared.max_connections);
                    continue;
                }
                let shared = shared.clone();
                conns.push(std::thread::spawn(move || handle_conn(&shared, stream)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    for handle in conns {
        let _ = handle.join();
    }
}

/// Tells an over-capacity client why it is being dropped. Reuses the
/// queue-full rejection shape: the capacity is the connection cap and the
/// retry hint applies the same way.
fn reject_connection(mut stream: TcpStream, capacity: usize) {
    let response = WireResponse::Rejected(Rejection::QueueFull {
        capacity,
        retry_after_ms: RETRY_AFTER_MS,
    });
    let _ = write_frame(&mut stream, wire::encode_response(&response).as_bytes());
}

fn handle_conn(shared: &Arc<NetShared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let Ok(mut read_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx): (Sender<Reply>, Receiver<Reply>) = channel();
    let writer = {
        let shared = shared.clone();
        std::thread::spawn(move || writer_loop(&shared, stream, &rx))
    };

    let mut frames = FrameReader::new(shared.max_payload);
    let mut submitted: u64 = 0;
    let mut drain_patience = 0u32;
    loop {
        if shared.stop.load(Ordering::Relaxed) && !frames.mid_frame() {
            break;
        }
        let payload = match frames.poll(&mut read_half) {
            Ok(FramePoll::Pending) => {
                if shared.stop.load(Ordering::Relaxed) {
                    drain_patience += 1;
                    if drain_patience > DRAIN_GRACE_POLLS {
                        break;
                    }
                }
                continue;
            }
            Ok(FramePoll::Closed) => break,
            Ok(FramePoll::Frame(payload)) => payload,
            Err(_) => {
                lock(&shared.counters).protocol_errors += 1;
                break;
            }
        };
        let request = match wire::decode_request(&payload) {
            Ok(request) => request,
            Err(e) => {
                lock(&shared.counters).protocol_errors += 1;
                let _ = tx.send(Reply::Now(Box::new(WireResponse::Error {
                    kind: "Net".to_owned(),
                    message: e.to_string(),
                })));
                break;
            }
        };
        match request {
            WireRequest::Ping => {
                let _ = tx.send(Reply::Now(Box::new(WireResponse::Pong {
                    served: submitted,
                })));
            }
            WireRequest::Drain => {
                // Acknowledge with the summary at this moment; final
                // numbers come from NetServer::join/wait. The accept loop
                // and every other reader see the flag within one poll.
                shared.stop.store(true, Ordering::Relaxed);
                let report = shared.serve.report();
                let _ = tx.send(Reply::Now(Box::new(WireResponse::Drained {
                    summary: Box::new(report.summary),
                    cache: Some(wire::WireCacheStats {
                        lut: report.lut_cache,
                        memo: report.plan_memo,
                    }),
                })));
                break;
            }
            request @ (WireRequest::Gemm(_) | WireRequest::Infer(_) | WireRequest::Session(_)) => {
                if let Some(limit) = shared.quota {
                    if submitted >= limit {
                        lock(&shared.counters).rejected_quota += 1;
                        let _ = tx.send(Reply::Now(Box::new(WireResponse::Rejected(
                            Rejection::QuotaExhausted { limit },
                        ))));
                        continue;
                    }
                }
                submitted += 1;
                let line = wire::encode_request(&request);
                let reply = match request {
                    WireRequest::Gemm(r) => Reply::Gemm(line, shared.serve.submit_gemm(r)),
                    WireRequest::Infer(r) => Reply::Infer(line, shared.serve.submit_infer(r)),
                    WireRequest::Session(r) => Reply::Session(line, shared.serve.submit_session(r)),
                    WireRequest::Ping | WireRequest::Drain => continue,
                };
                let _ = tx.send(reply);
            }
        }
    }
    drop(tx);
    let _ = writer.join();
}

/// Resolves tickets in request order, appends executed requests to the
/// log, and frames responses back. A broken pipe stops writing but keeps
/// draining the channel, so every submitted ticket resolves and the
/// server-side summary stays complete even when the client vanished
/// mid-request.
fn writer_loop(shared: &Arc<NetShared>, mut stream: TcpStream, rx: &Receiver<Reply>) {
    let mut alive = true;
    for reply in rx.iter() {
        let response = match reply {
            Reply::Now(response) => *response,
            Reply::Gemm(line, ticket) => {
                let result = ticket.wait();
                if !matches!(result, Err(EngineError::Rejected(_))) {
                    shared.log_line(&line);
                }
                wire::gemm_result_response(&result)
            }
            Reply::Infer(line, ticket) => {
                let result = ticket.wait();
                if !matches!(result, Err(EngineError::Rejected(_))) {
                    shared.log_line(&line);
                }
                wire::infer_result_response(&result)
            }
            Reply::Session(line, ticket) => {
                let result = ticket.wait();
                if !matches!(result, Err(EngineError::Rejected(_))) {
                    shared.log_line(&line);
                }
                wire::session_result_response(&result)
            }
        };
        if alive && write_frame(&mut stream, wire::encode_response(&response).as_bytes()).is_err() {
            alive = false;
        }
    }
}
