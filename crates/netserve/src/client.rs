//! The blocking TCP client for the network serving front-end.
//!
//! [`NetClient`] speaks one frame per message over a plain
//! `std::net::TcpStream`. The typed convenience calls ([`NetClient::gemm`],
//! [`NetClient::infer`]) map wire-level outcomes back onto the same
//! [`EngineError`] surface the in-process API raises: a typed rejection
//! becomes [`EngineError::Rejected`] (so backpressure stays matchable),
//! a server-side failure becomes [`engine::NetError::Remote`] carrying
//! the original variant name, and transport faults chain through
//! [`engine::NetError::Io`]/[`engine::NetError::Frame`].
//!
//! Requests can also be pipelined: [`NetClient::send`] any number of
//! frames, then [`NetClient::recv`] responses in order — the server
//! answers strictly in per-connection request order.

use crate::frame::{read_frame, write_frame, DEFAULT_MAX_PAYLOAD};
use crate::wire::{
    self, WireCacheStats, WireGemmResponse, WireInferResponse, WireRequest, WireResponse,
    WireSessionResponse,
};
use engine::{
    EngineError, GemmRequest, InferenceRequest, NetError, Rejection, ServeSummary, SessionRequest,
};
use std::io::ErrorKind;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connection to a [`crate::server::NetServer`].
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    max_payload: u32,
}

impl NetClient {
    /// Connects to a serving daemon.
    ///
    /// # Errors
    ///
    /// [`EngineError::Net`] on connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<NetClient, EngineError> {
        let stream = TcpStream::connect(addr).map_err(|e| NetError::io("connect", &e))?;
        stream
            .set_nodelay(true)
            .map_err(|e| NetError::io("set nodelay", &e))?;
        Ok(NetClient {
            stream,
            max_payload: DEFAULT_MAX_PAYLOAD,
        })
    }

    /// Overrides the response payload cap (default 16 MiB).
    #[must_use]
    pub fn with_max_payload(mut self, max_payload: u32) -> Self {
        self.max_payload = max_payload;
        self
    }

    /// Sends one request frame without waiting for the response
    /// (pipelining half; pair with [`NetClient::recv`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::Net`] on transport failure.
    pub fn send(&mut self, request: &WireRequest) -> Result<(), EngineError> {
        write_frame(&mut self.stream, wire::encode_request(request).as_bytes())?;
        Ok(())
    }

    /// Receives the next response frame (pipelining half).
    ///
    /// # Errors
    ///
    /// [`EngineError::Net`]: decode errors, transport faults, or an
    /// unexpected close (`Io` with [`ErrorKind::UnexpectedEof`]) when the
    /// server hung up with responses still owed.
    pub fn recv(&mut self) -> Result<WireResponse, EngineError> {
        match read_frame(&mut self.stream, self.max_payload)? {
            Some(payload) => Ok(wire::decode_response(&payload)?),
            None => Err(NetError::Io {
                kind: ErrorKind::UnexpectedEof,
                detail: "server closed the connection before responding".to_owned(),
            }
            .into()),
        }
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    ///
    /// As [`NetClient::send`] and [`NetClient::recv`].
    pub fn call(&mut self, request: &WireRequest) -> Result<WireResponse, EngineError> {
        self.send(request)?;
        self.recv()
    }

    /// Executes one GEMM remotely — the network twin of
    /// [`engine::Engine::submit`].
    ///
    /// # Errors
    ///
    /// [`EngineError::Rejected`] for typed backpressure (retryable where
    /// the variant says so); [`EngineError::Net`] with
    /// [`NetError::Remote`] when the server-side execution failed;
    /// transport/decode errors as usual.
    pub fn gemm(&mut self, request: &GemmRequest) -> Result<WireGemmResponse, EngineError> {
        match self.call(&WireRequest::Gemm(request.clone()))? {
            WireResponse::Gemm(g) => Ok(g),
            other => Err(unexpected(other, "gemm")),
        }
    }

    /// Executes one GEMM, retrying typed [`Rejection::QueueFull`]
    /// backpressure with the server-suggested delay, up to `attempts`
    /// tries total. Other outcomes (including other rejections) return
    /// immediately.
    ///
    /// # Errors
    ///
    /// As [`NetClient::gemm`]; a final `QueueFull` after the last attempt
    /// is returned as-is.
    pub fn gemm_with_retry(
        &mut self,
        request: &GemmRequest,
        attempts: u32,
    ) -> Result<WireGemmResponse, EngineError> {
        retry(attempts, |_| self.gemm(request))
    }

    /// Executes one inference request remotely — the network twin of
    /// [`engine::Engine::infer`].
    ///
    /// # Errors
    ///
    /// As [`NetClient::gemm`].
    pub fn infer(&mut self, request: &InferenceRequest) -> Result<WireInferResponse, EngineError> {
        match self.call(&WireRequest::Infer(request.clone()))? {
            WireResponse::Infer(i) => Ok(i),
            other => Err(unexpected(other, "infer")),
        }
    }

    /// Inference with the same `QueueFull` retry policy as
    /// [`NetClient::gemm_with_retry`].
    ///
    /// # Errors
    ///
    /// As [`NetClient::infer`].
    pub fn infer_with_retry(
        &mut self,
        request: &InferenceRequest,
        attempts: u32,
    ) -> Result<WireInferResponse, EngineError> {
        retry(attempts, |_| self.infer(request))
    }

    /// Runs one decoder session remotely — the network twin of
    /// [`engine::Engine::infer_session`]. The server serves it with
    /// continuous batching and replies once the whole session (prefill
    /// plus every decode step) completes, with per-step latencies in the
    /// response.
    ///
    /// # Errors
    ///
    /// As [`NetClient::gemm`].
    pub fn session(
        &mut self,
        request: &SessionRequest,
    ) -> Result<WireSessionResponse, EngineError> {
        match self.call(&WireRequest::Session(request.clone()))? {
            WireResponse::Session(s) => Ok(s),
            other => Err(unexpected(other, "session")),
        }
    }

    /// Sessions with the same `QueueFull` retry policy as
    /// [`NetClient::gemm_with_retry`].
    ///
    /// # Errors
    ///
    /// As [`NetClient::session`].
    pub fn session_with_retry(
        &mut self,
        request: &SessionRequest,
        attempts: u32,
    ) -> Result<WireSessionResponse, EngineError> {
        retry(attempts, |_| self.session(request))
    }

    /// Liveness probe; returns how many requests this connection has had
    /// admitted.
    ///
    /// # Errors
    ///
    /// Transport/decode errors.
    pub fn ping(&mut self) -> Result<u64, EngineError> {
        match self.call(&WireRequest::Ping)? {
            WireResponse::Pong { served } => Ok(served),
            other => Err(unexpected(other, "ping")),
        }
    }

    /// Asks the server to drain and returns its summary at that moment,
    /// plus the server's cache lifecycle counters when the peer sends
    /// them (`None` from servers predating the field). The server stops
    /// accepting, flushes every in-flight ticket, and exits; this
    /// connection is closed afterwards.
    ///
    /// # Errors
    ///
    /// Transport/decode errors.
    pub fn drain(&mut self) -> Result<(ServeSummary, Option<WireCacheStats>), EngineError> {
        match self.call(&WireRequest::Drain)? {
            WireResponse::Drained { summary, cache } => Ok((*summary, cache)),
            other => Err(unexpected(other, "drain")),
        }
    }
}

fn unexpected(response: WireResponse, verb: &str) -> EngineError {
    let kind = match response {
        WireResponse::Rejected(r) => return EngineError::Rejected(r),
        WireResponse::Error { kind, message } => return NetError::Remote { kind, message }.into(),
        WireResponse::Gemm(_) => "gemm",
        WireResponse::Infer(_) => "infer",
        WireResponse::Session(_) => "session",
        WireResponse::Pong { .. } => "pong",
        WireResponse::Drained { .. } => "drained",
    };
    NetError::Protocol(format!("unexpected response to '{verb}': {kind}")).into()
}

/// Runs `attempt` up to `attempts` times, sleeping the server-suggested
/// `retry_after_ms` between `QueueFull` rejections.
fn retry<T>(
    attempts: u32,
    mut attempt: impl FnMut(u32) -> Result<T, EngineError>,
) -> Result<T, EngineError> {
    let attempts = attempts.max(1);
    let mut tried = 0;
    loop {
        match attempt(tried) {
            Err(EngineError::Rejected(Rejection::QueueFull { retry_after_ms, .. }))
                if tried + 1 < attempts =>
            {
                std::thread::sleep(Duration::from_millis(retry_after_ms));
                tried += 1;
            }
            other => return other,
        }
    }
}
