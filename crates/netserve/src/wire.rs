//! Versioned, typed wire DTOs shared by the in-process and network paths.
//!
//! [`WireRequest`] and [`WireResponse`] mirror the engine's typed API
//! ([`GemmRequest`], [`InferenceRequest`] and their responses) so a remote
//! caller works with exactly the objects an in-process caller does — the
//! network layer adds an encoding, not a second API. Payloads are compact
//! JSON ([`crate::json`]) with sorted keys, so encoding is deterministic:
//! the same request always serializes to the same bytes, which is what
//! lets the server's request log be both human-greppable and bitwise
//! replayable.
//!
//! Every number that matters is integer-exact on the wire (`u128`
//! femtoseconds and picojoules, `i32` GEMM values via [`Json::Int`]).
//! The only floats are model seconds and quantization scales, written in
//! shortest-roundtrip form (`{:?}`), which re-parses to the identical
//! bit pattern — so a decoded response compares equal to the original.
//!
//! Decoding is strict and total: every malformed payload maps to
//! [`NetError::Decode`] with a message naming the offending field; an
//! unknown request/response `kind` or model name is an error, never a
//! panic or a silent default.

use crate::json::Json;
use dnn::{DecodeStep, ModelConfig, Workload};
use engine::serve::{gemm_latency_femtos, LatencyDigest};
use engine::traffic::TrafficRequest;
use engine::{
    CacheOutcome, CacheStats, EngineError, GemmRequest, GemmResponse, InferenceRequest,
    InferenceResponse, MemoStats, NetError, PlanPin, Rejection, ServeRecorder, ServeSummary,
    SessionRequest, SessionResponse,
};
use localut::plan::Placement;
use localut::{GemmDims, Method};
use pim_sim::{Category, CounterSnapshot, Stats};
use quant::{BitConfig, NumericFormat, QMatrix};

/// Version stamped into every payload (`"v"`); bumped on any schema
/// change. The frame envelope carries its own version — this one guards
/// the *DTO* schema, so a logged request stays self-describing.
pub const WIRE_VERSION: u128 = 1;

/// A request as it travels over the wire — the same typed request the
/// in-process API takes, plus the two control verbs only a remote caller
/// needs.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// Execute one GEMM ([`engine::Engine::submit`] semantics).
    Gemm(GemmRequest),
    /// Execute one inference request ([`engine::Engine::infer`] semantics).
    Infer(InferenceRequest),
    /// Execute one decoder session ([`engine::Engine::infer_session`]
    /// semantics; served remotely with continuous batching).
    Session(SessionRequest),
    /// Liveness probe; answered immediately with [`WireResponse::Pong`].
    Ping,
    /// Ask the server to drain: stop accepting, flush in-flight tickets,
    /// exit. Answered with [`WireResponse::Drained`].
    Drain,
}

/// The GEMM response fields that cross the wire: everything deterministic
/// from [`GemmResponse`] plus the request's serving latency (which a
/// remote client cannot derive — it lives in the per-bank profiles that
/// stay server-side).
#[derive(Debug, Clone, PartialEq)]
pub struct WireGemmResponse {
    /// Row-major `M×N` integer outputs, bit-identical to the server's.
    pub values: Vec<i32>,
    /// Full GEMM dimensions.
    pub dims: GemmDims,
    /// The method that executed.
    pub method: Method,
    /// Merged per-bank statistics.
    pub stats: Stats,
    /// Modeled energy, picojoules.
    pub energy_pj: u128,
    /// FNV-1a fingerprint of `values`.
    pub checksum: u64,
    /// Simulated serving latency ([`gemm_latency_femtos`]).
    pub latency_femtos: u128,
    /// LUT-cache outcome (`None` for LUT-free methods).
    pub lut_cache: Option<CacheOutcome>,
}

impl WireGemmResponse {
    /// Projects a server-side response onto the wire.
    #[must_use]
    pub fn from_response(r: &GemmResponse) -> Self {
        WireGemmResponse {
            values: r.values.clone(),
            dims: r.dims,
            method: r.method,
            stats: r.stats.clone(),
            energy_pj: r.energy_pj,
            checksum: r.checksum,
            latency_femtos: gemm_latency_femtos(r),
            lut_cache: r.lut_cache,
        }
    }
}

/// The inference response fields that cross the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireInferResponse {
    /// Per-workload `(prefill_seconds, decode_seconds)` in request order.
    pub reports: Vec<(f64, f64)>,
    /// Merged per-request statistics.
    pub stats: Stats,
    /// Modeled energy, picojoules.
    pub energy_pj: u128,
    /// The method that executed.
    pub method: Method,
}

impl WireInferResponse {
    /// Projects a server-side response onto the wire.
    #[must_use]
    pub fn from_response(r: &InferenceResponse) -> Self {
        WireInferResponse {
            reports: r
                .reports
                .iter()
                .map(|rep| (rep.prefill_seconds, rep.decode_seconds))
                .collect(),
            stats: r.stats.clone(),
            energy_pj: r.energy_pj,
            method: r.method,
        }
    }
}

/// The session response fields that cross the wire: the deterministic
/// aggregate plus the per-step latency observables continuous batching
/// reports (TTFT and per-decode-step femtoseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct WireSessionResponse {
    /// Per-step `(prefill_seconds, decode_seconds)` in step order.
    pub reports: Vec<(f64, f64)>,
    /// Merged per-session statistics.
    pub stats: Stats,
    /// Modeled energy, picojoules.
    pub energy_pj: u128,
    /// The method that executed.
    pub method: Method,
    /// Time to first token, integer femtoseconds.
    pub ttft_femtos: u128,
    /// Each decode step's simulated femtoseconds, in step order.
    pub decode_step_femtos: Vec<u128>,
}

impl WireSessionResponse {
    /// Projects a server-side response onto the wire.
    #[must_use]
    pub fn from_response(r: &SessionResponse) -> Self {
        WireSessionResponse {
            reports: r
                .reports
                .iter()
                .map(|rep| (rep.prefill_seconds, rep.decode_seconds))
                .collect(),
            stats: r.stats.clone(),
            energy_pj: r.energy_pj,
            method: r.method,
            ttft_femtos: r.ttft_femtos,
            decode_step_femtos: r.decode_step_femtos.clone(),
        }
    }
}

/// A response as it travels over the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// A served GEMM.
    Gemm(WireGemmResponse),
    /// A served inference request.
    Infer(WireInferResponse),
    /// A completed decoder session.
    Session(WireSessionResponse),
    /// Typed backpressure: the request was *not* admitted (queue full,
    /// quota exhausted, or the server is draining) and may be retried
    /// where the variant says so.
    Rejected(Rejection),
    /// The request was admitted but failed; `kind` names the
    /// [`EngineError`] variant.
    Error {
        /// The [`EngineError`] variant name (e.g. `"Gemm"`).
        kind: String,
        /// The rendered error chain.
        message: String,
    },
    /// Answer to [`WireRequest::Ping`].
    Pong {
        /// Requests this connection has had admitted so far.
        served: u64,
    },
    /// Answer to [`WireRequest::Drain`]: the summary at the moment the
    /// drain began (final numbers come from the server's own report).
    Drained {
        /// The deterministic summary snapshot.
        summary: Box<ServeSummary>,
        /// Host-side cache lifecycle counters at drain time. `None` when
        /// the peer predates the field — decoding tolerates its absence
        /// so old acks still parse.
        cache: Option<WireCacheStats>,
    },
}

/// Host-side cache lifecycle counters piggybacked on a drain ack. These
/// are observability numbers (wall-clock class), never part of the
/// deterministic [`ServeSummary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireCacheStats {
    /// LUT cache counters ([`engine::Engine::lut_cache_stats`]).
    pub lut: CacheStats,
    /// Planner-memo counters ([`engine::Engine::plan_memo_stats`]).
    pub memo: MemoStats,
}

/// Records a wire response into a client-side [`ServeRecorder`] exactly
/// as the server records the underlying result — the mechanism by which
/// a remote client reconstructs the server's [`ServeSummary`] bit for
/// bit. Rejections record nothing: a rejected request was never executed.
pub fn record_response(recorder: &mut ServeRecorder, response: &WireResponse) {
    match response {
        WireResponse::Gemm(g) => {
            recorder.record_gemm_parts(&g.stats, g.energy_pj, g.latency_femtos, g.checksum);
        }
        WireResponse::Infer(i) => recorder.record_infer_parts(&i.stats, i.energy_pj),
        WireResponse::Session(s) => recorder.record_session_parts(
            &s.stats,
            s.energy_pj,
            s.ttft_femtos,
            &s.decode_step_femtos,
        ),
        WireResponse::Error { .. } => recorder.record_failure(),
        WireResponse::Rejected(_) | WireResponse::Pong { .. } | WireResponse::Drained { .. } => {}
    }
}

/// Wraps a served GEMM result as the wire response the client expects.
#[must_use]
pub fn gemm_result_response(result: &Result<GemmResponse, EngineError>) -> WireResponse {
    match result {
        Ok(r) => WireResponse::Gemm(WireGemmResponse::from_response(r)),
        Err(e) => error_response(e),
    }
}

/// Wraps a served inference result as the wire response the client
/// expects.
#[must_use]
pub fn infer_result_response(result: &Result<InferenceResponse, EngineError>) -> WireResponse {
    match result {
        Ok(r) => WireResponse::Infer(WireInferResponse::from_response(r)),
        Err(e) => error_response(e),
    }
}

/// Wraps a served session result as the wire response the client
/// expects.
#[must_use]
pub fn session_result_response(result: &Result<SessionResponse, EngineError>) -> WireResponse {
    match result {
        Ok(r) => WireResponse::Session(WireSessionResponse::from_response(r)),
        Err(e) => error_response(e),
    }
}

/// Maps a server-side error to the wire: typed rejections stay typed;
/// everything else becomes [`WireResponse::Error`] with the variant name.
#[must_use]
pub fn error_response(error: &EngineError) -> WireResponse {
    match error {
        EngineError::Rejected(r) => WireResponse::Rejected(*r),
        other => WireResponse::Error {
            kind: error_kind(other).to_owned(),
            message: other.to_string(),
        },
    }
}

fn error_kind(error: &EngineError) -> &'static str {
    match error {
        EngineError::Quant(_) => "Quant",
        EngineError::Gemm(_) => "Gemm",
        EngineError::Sim(_) => "Sim",
        EngineError::Pq(_) => "Pq",
        EngineError::InvalidRequest(_) => "InvalidRequest",
        EngineError::Serve(_) => "Serve",
        EngineError::Rejected(_) => "Rejected",
        EngineError::Net(_) => "Net",
        EngineError::Cache(_) => "Cache",
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn u<T: Into<u128>>(v: T) -> Json {
    Json::UInt(v.into())
}

fn signed(v: i128) -> Json {
    if v < 0 {
        Json::Int(v)
    } else {
        Json::UInt(v as u128)
    }
}

fn format_token(f: NumericFormat) -> String {
    match f {
        NumericFormat::Int(b) => format!("int{b}"),
        NumericFormat::Uint(b) => format!("uint{b}"),
        NumericFormat::Bipolar => "bipolar".to_owned(),
        NumericFormat::Fp4 => "fp4".to_owned(),
        NumericFormat::Fp8 => "fp8".to_owned(),
        NumericFormat::Fp16 => "fp16".to_owned(),
    }
}

fn qmatrix_json(m: &QMatrix) -> Json {
    Json::object(vec![
        ("rows", u(m.rows() as u64)),
        ("cols", u(m.cols() as u64)),
        ("format", Json::Str(format_token(m.format()))),
        ("scale", Json::Float(f64::from(m.scale()))),
        (
            "codes",
            Json::Array(m.codes().iter().map(|&c| u(c)).collect()),
        ),
    ])
}

fn stats_json(stats: &Stats) -> Json {
    let snap = stats.snapshot();
    Json::object(vec![
        ("banks", u(snap.banks)),
        (
            "category_femtos",
            Json::Object(
                snap.category_femtos
                    .iter()
                    .map(|&(c, f)| (c.label().to_owned(), Json::UInt(f)))
                    .collect(),
            ),
        ),
        ("dram_read_bytes", Json::UInt(snap.dram_read_bytes)),
        ("dram_write_bytes", Json::UInt(snap.dram_write_bytes)),
        ("wram_accesses", Json::UInt(snap.wram_accesses)),
        ("instructions", Json::UInt(snap.instructions)),
        ("host_bytes", Json::UInt(snap.host_bytes)),
        ("host_ops", Json::UInt(snap.host_ops)),
    ])
}

fn digest_json(digest: &LatencyDigest) -> Json {
    Json::object(vec![
        ("p50", Json::UInt(digest.p50)),
        ("p95", Json::UInt(digest.p95)),
        ("p99", Json::UInt(digest.p99)),
        ("max", Json::UInt(digest.max)),
        ("total", Json::UInt(digest.total)),
    ])
}

/// The canonical JSON form of a [`ServeSummary`] (used by the drain
/// response, the daemon's `--out` file, and the multi-process tests).
#[must_use]
pub fn summary_json(summary: &ServeSummary) -> Json {
    Json::object(vec![
        ("requests", u(summary.requests)),
        ("gemm_requests", u(summary.gemm_requests)),
        ("infer_requests", u(summary.infer_requests)),
        ("session_requests", u(summary.session_requests)),
        ("decode_steps", u(summary.decode_steps)),
        ("failed_requests", u(summary.failed_requests)),
        ("stats", stats_json(&summary.stats)),
        ("energy_pj", Json::UInt(summary.energy_pj)),
        ("latency", digest_json(&summary.latency)),
        ("ttft", digest_json(&summary.ttft)),
        ("decode", digest_json(&summary.decode)),
        ("checksum", u(summary.checksum)),
    ])
}

/// The canonical JSON form of the cache counters piggybacked on a drain
/// ack. Kept separate from [`summary_json`] so deterministic summary
/// files never embed host-varying counters.
#[must_use]
pub fn cache_stats_json(cache: &WireCacheStats) -> Json {
    Json::object(vec![
        ("lut_hits", u(cache.lut.hits)),
        ("lut_misses", u(cache.lut.misses)),
        ("lut_evictions", u(cache.lut.evictions)),
        ("lut_resident_bytes", u(cache.lut.resident_bytes)),
        ("lut_failed_builds", u(cache.lut.failed_builds)),
        ("lut_restored", u(cache.lut.restored)),
        ("lut_entries", u(cache.lut.entries as u64)),
        ("memo_hits", u(cache.memo.hits)),
        ("memo_misses", u(cache.memo.misses)),
        ("memo_entries", u(cache.memo.entries as u64)),
    ])
}

fn cache_stats_from_json(value: &Json) -> Result<WireCacheStats, NetError> {
    Ok(WireCacheStats {
        lut: CacheStats {
            hits: u64_field(value, "lut_hits")?,
            misses: u64_field(value, "lut_misses")?,
            evictions: u64_field(value, "lut_evictions")?,
            resident_bytes: u64_field(value, "lut_resident_bytes")?,
            failed_builds: u64_field(value, "lut_failed_builds")?,
            restored: u64_field(value, "lut_restored")?,
            entries: u64_field(value, "lut_entries")? as usize,
        },
        memo: MemoStats {
            hits: u64_field(value, "memo_hits")?,
            misses: u64_field(value, "memo_misses")?,
            entries: u64_field(value, "memo_entries")? as usize,
        },
    })
}

fn workload_json(w: &Workload) -> Json {
    let mut pairs = vec![
        ("model", Json::Str(w.model.name.into())),
        ("batch", u(w.batch as u64)),
        ("decode_tokens", u(w.decode_tokens)),
    ];
    if let Some(step) = w.step {
        pairs.push(("context", u(step.context as u64)));
    }
    Json::object(pairs)
}

fn request_json(request: &WireRequest) -> Json {
    let mut pairs: Vec<(&str, Json)> = vec![("v", Json::UInt(WIRE_VERSION))];
    match request {
        WireRequest::Gemm(r) => {
            pairs.push(("kind", Json::Str("gemm".into())));
            pairs.push(("w", qmatrix_json(&r.w)));
            pairs.push(("a", qmatrix_json(&r.a)));
            if let Some(m) = r.method {
                pairs.push(("method", Json::Str(m.flag_name().into())));
            }
            if let Some(b) = r.banks {
                pairs.push(("banks", u(b)));
            }
            if let Some(pin) = r.pin {
                pairs.push((
                    "pin",
                    Json::object(vec![
                        ("placement", Json::Str(pin.placement.to_string())),
                        ("p", u(pin.p)),
                    ]),
                ));
            }
        }
        WireRequest::Infer(r) => {
            pairs.push(("kind", Json::Str("infer".into())));
            pairs.push((
                "workloads",
                Json::Array(r.workloads.iter().map(workload_json).collect()),
            ));
            if let Some(m) = r.method {
                pairs.push(("method", Json::Str(m.flag_name().into())));
            }
            if let Some(bits) = r.bits {
                pairs.push(("bits", Json::Str(bits.to_string())));
            }
        }
        WireRequest::Session(r) => {
            pairs.push(("kind", Json::Str("session".into())));
            pairs.push(("workload", workload_json(&r.workload)));
            if let Some(m) = r.method {
                pairs.push(("method", Json::Str(m.flag_name().into())));
            }
            if let Some(bits) = r.bits {
                pairs.push(("bits", Json::Str(bits.to_string())));
            }
        }
        WireRequest::Ping => pairs.push(("kind", Json::Str("ping".into()))),
        WireRequest::Drain => pairs.push(("kind", Json::Str("drain".into()))),
    }
    Json::object(pairs)
}

fn rejection_json(rejection: &Rejection) -> Vec<(&'static str, Json)> {
    match *rejection {
        Rejection::QueueFull {
            capacity,
            retry_after_ms,
        } => vec![
            ("reason", Json::Str("queue-full".into())),
            ("capacity", u(capacity as u64)),
            ("retry_after_ms", u(retry_after_ms)),
        ],
        Rejection::QuotaExhausted { limit } => vec![
            ("reason", Json::Str("quota-exhausted".into())),
            ("limit", u(limit)),
        ],
        Rejection::Draining => vec![("reason", Json::Str("draining".into()))],
    }
}

fn response_json(response: &WireResponse) -> Json {
    let mut pairs: Vec<(&str, Json)> = vec![("v", Json::UInt(WIRE_VERSION))];
    match response {
        WireResponse::Gemm(g) => {
            pairs.push(("kind", Json::Str("gemm".into())));
            pairs.push((
                "values",
                Json::Array(g.values.iter().map(|&v| signed(i128::from(v))).collect()),
            ));
            pairs.push((
                "dims",
                Json::object(vec![
                    ("m", u(g.dims.m as u64)),
                    ("k", u(g.dims.k as u64)),
                    ("n", u(g.dims.n as u64)),
                ]),
            ));
            pairs.push(("method", Json::Str(g.method.flag_name().into())));
            pairs.push(("stats", stats_json(&g.stats)));
            pairs.push(("energy_pj", Json::UInt(g.energy_pj)));
            pairs.push(("checksum", u(g.checksum)));
            pairs.push(("latency_femtos", Json::UInt(g.latency_femtos)));
            if let Some(outcome) = g.lut_cache {
                pairs.push((
                    "lut_cache",
                    Json::Str(
                        match outcome {
                            CacheOutcome::Hit => "hit",
                            CacheOutcome::Miss => "miss",
                        }
                        .into(),
                    ),
                ));
            }
        }
        WireResponse::Infer(i) => {
            pairs.push(("kind", Json::Str("infer".into())));
            pairs.push((
                "reports",
                Json::Array(
                    i.reports
                        .iter()
                        .map(|&(prefill, decode)| {
                            Json::object(vec![
                                ("prefill_seconds", Json::Float(prefill)),
                                ("decode_seconds", Json::Float(decode)),
                            ])
                        })
                        .collect(),
                ),
            ));
            pairs.push(("stats", stats_json(&i.stats)));
            pairs.push(("energy_pj", Json::UInt(i.energy_pj)));
            pairs.push(("method", Json::Str(i.method.flag_name().into())));
        }
        WireResponse::Session(s) => {
            pairs.push(("kind", Json::Str("session".into())));
            pairs.push((
                "reports",
                Json::Array(
                    s.reports
                        .iter()
                        .map(|&(prefill, decode)| {
                            Json::object(vec![
                                ("prefill_seconds", Json::Float(prefill)),
                                ("decode_seconds", Json::Float(decode)),
                            ])
                        })
                        .collect(),
                ),
            ));
            pairs.push(("stats", stats_json(&s.stats)));
            pairs.push(("energy_pj", Json::UInt(s.energy_pj)));
            pairs.push(("method", Json::Str(s.method.flag_name().into())));
            pairs.push(("ttft_femtos", Json::UInt(s.ttft_femtos)));
            pairs.push((
                "decode_step_femtos",
                Json::Array(
                    s.decode_step_femtos
                        .iter()
                        .map(|&f| Json::UInt(f))
                        .collect(),
                ),
            ));
        }
        WireResponse::Rejected(r) => {
            pairs.push(("kind", Json::Str("rejected".into())));
            pairs.extend(rejection_json(r));
        }
        WireResponse::Error { kind, message } => {
            pairs.push(("kind", Json::Str("error".into())));
            pairs.push(("error_kind", Json::Str(kind.clone())));
            pairs.push(("message", Json::Str(message.clone())));
        }
        WireResponse::Pong { served } => {
            pairs.push(("kind", Json::Str("pong".into())));
            pairs.push(("served", u(*served)));
        }
        WireResponse::Drained { summary, cache } => {
            pairs.push(("kind", Json::Str("drained".into())));
            pairs.push(("summary", summary_json(summary)));
            if let Some(cache) = cache {
                pairs.push(("cache", cache_stats_json(cache)));
            }
        }
    }
    Json::object(pairs)
}

/// Encodes a request as its canonical compact payload — the exact bytes
/// framed onto the wire and the exact line the server's request log
/// stores.
#[must_use]
pub fn encode_request(request: &WireRequest) -> String {
    request_json(request).to_compact()
}

/// Encodes a response as its canonical compact payload.
#[must_use]
pub fn encode_response(response: &WireResponse) -> String {
    response_json(response).to_compact()
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn decode_err(what: impl Into<String>) -> NetError {
    NetError::Decode(what.into())
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, NetError> {
    obj.get(key)
        .ok_or_else(|| decode_err(format!("missing field '{key}'")))
}

fn uint_field(obj: &Json, key: &str) -> Result<u128, NetError> {
    field(obj, key)?
        .as_uint()
        .ok_or_else(|| decode_err(format!("field '{key}' must be a non-negative integer")))
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, NetError> {
    u64::try_from(uint_field(obj, key)?)
        .map_err(|_| decode_err(format!("field '{key}' overflows u64")))
}

fn usize_field(obj: &Json, key: &str) -> Result<usize, NetError> {
    usize::try_from(uint_field(obj, key)?)
        .map_err(|_| decode_err(format!("field '{key}' overflows usize")))
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<&'a str, NetError> {
    field(obj, key)?
        .as_str()
        .ok_or_else(|| decode_err(format!("field '{key}' must be a string")))
}

fn array_field<'a>(obj: &'a Json, key: &str) -> Result<&'a [Json], NetError> {
    field(obj, key)?
        .as_array()
        .ok_or_else(|| decode_err(format!("field '{key}' must be an array")))
}

fn float_field(obj: &Json, key: &str) -> Result<f64, NetError> {
    match field(obj, key)? {
        Json::Float(v) => Ok(*v),
        Json::UInt(v) => Ok(*v as f64),
        Json::Int(v) => Ok(*v as f64),
        _ => Err(decode_err(format!("field '{key}' must be a number"))),
    }
}

fn parse_payload(payload: &[u8]) -> Result<Json, NetError> {
    let text = std::str::from_utf8(payload).map_err(|_| decode_err("payload is not UTF-8"))?;
    let value = Json::parse(text).map_err(|e| decode_err(format!("payload is not JSON: {e}")))?;
    let v = uint_field(&value, "v")?;
    if v != WIRE_VERSION {
        return Err(decode_err(format!(
            "unsupported wire version {v} (this build speaks {WIRE_VERSION})"
        )));
    }
    Ok(value)
}

fn format_from_token(token: &str) -> Result<NumericFormat, NetError> {
    let bits = |prefix: &str, lo: u8, hi: u8| -> Result<u8, NetError> {
        token[prefix.len()..]
            .parse::<u8>()
            .ok()
            .filter(|b| (lo..=hi).contains(b))
            .ok_or_else(|| decode_err(format!("bad numeric format '{token}'")))
    };
    match token {
        "bipolar" => Ok(NumericFormat::Bipolar),
        "fp4" => Ok(NumericFormat::Fp4),
        "fp8" => Ok(NumericFormat::Fp8),
        "fp16" => Ok(NumericFormat::Fp16),
        t if t.starts_with("uint") => Ok(NumericFormat::Uint(bits("uint", 1, 16)?)),
        t if t.starts_with("int") => Ok(NumericFormat::Int(bits("int", 2, 16)?)),
        t => Err(decode_err(format!("unknown numeric format '{t}'"))),
    }
}

fn qmatrix_from_json(value: &Json, which: &str) -> Result<QMatrix, NetError> {
    let rows = usize_field(value, "rows")?;
    let cols = usize_field(value, "cols")?;
    let format = format_from_token(str_field(value, "format")?)?;
    let scale = float_field(value, "scale")? as f32;
    let codes = array_field(value, "codes")?
        .iter()
        .map(|c| {
            c.as_uint()
                .and_then(|v| u16::try_from(v).ok())
                .ok_or_else(|| decode_err(format!("matrix '{which}': codes must be u16")))
        })
        .collect::<Result<Vec<u16>, NetError>>()?;
    QMatrix::from_codes(codes, rows, cols, format, scale)
        .map_err(|e| decode_err(format!("matrix '{which}' is invalid: {e}")))
}

fn method_from_token(token: &str) -> Result<Method, NetError> {
    token.parse::<Method>().map_err(decode_err)
}

fn stats_from_json(value: &Json) -> Result<Stats, NetError> {
    let categories = match field(value, "category_femtos")? {
        Json::Object(map) => map
            .iter()
            .map(|(label, femtos)| {
                let category = Category::from_label(label)
                    .ok_or_else(|| decode_err(format!("unknown cost category '{label}'")))?;
                let femtos = femtos
                    .as_uint()
                    .ok_or_else(|| decode_err("category femtos must be integers"))?;
                Ok((category, femtos))
            })
            .collect::<Result<Vec<(Category, u128)>, NetError>>()?,
        _ => return Err(decode_err("field 'category_femtos' must be an object")),
    };
    let snap = CounterSnapshot {
        banks: u64_field(value, "banks")?,
        total_femtos: categories.iter().map(|&(_, f)| f).sum(),
        category_femtos: categories,
        dram_read_bytes: uint_field(value, "dram_read_bytes")?,
        dram_write_bytes: uint_field(value, "dram_write_bytes")?,
        wram_accesses: uint_field(value, "wram_accesses")?,
        instructions: uint_field(value, "instructions")?,
        host_bytes: uint_field(value, "host_bytes")?,
        host_ops: uint_field(value, "host_ops")?,
    };
    Ok(Stats::from_snapshot(&snap))
}

/// Decodes the canonical JSON form of a [`ServeSummary`] (inverse of
/// [`summary_json`]).
///
/// # Errors
///
/// [`NetError::Decode`] naming the first malformed field.
pub fn summary_from_json(value: &Json) -> Result<ServeSummary, NetError> {
    let digest = |key: &str| -> Result<LatencyDigest, NetError> {
        let d = field(value, key)?;
        Ok(LatencyDigest {
            p50: uint_field(d, "p50")?,
            p95: uint_field(d, "p95")?,
            p99: uint_field(d, "p99")?,
            max: uint_field(d, "max")?,
            total: uint_field(d, "total")?,
        })
    };
    Ok(ServeSummary {
        requests: u64_field(value, "requests")?,
        gemm_requests: u64_field(value, "gemm_requests")?,
        infer_requests: u64_field(value, "infer_requests")?,
        session_requests: u64_field(value, "session_requests")?,
        decode_steps: u64_field(value, "decode_steps")?,
        failed_requests: u64_field(value, "failed_requests")?,
        stats: stats_from_json(field(value, "stats")?)?,
        energy_pj: uint_field(value, "energy_pj")?,
        latency: digest("latency")?,
        ttft: digest("ttft")?,
        decode: digest("decode")?,
        checksum: u64_field(value, "checksum")?,
    })
}

fn workload_from_json(value: &Json) -> Result<Workload, NetError> {
    let model = match str_field(value, "model")? {
        "BERT" => ModelConfig::bert_base(),
        "OPT" => ModelConfig::opt_125m(),
        "ViT" => ModelConfig::vit_base(),
        other => return Err(decode_err(format!("unknown model '{other}'"))),
    };
    let decode_tokens = u64_field(value, "decode_tokens")?;
    let decode_tokens = u32::try_from(decode_tokens)
        .map_err(|_| decode_err("field 'decode_tokens' overflows u32"))?;
    let step = match value.get("context") {
        None => None,
        Some(_) => Some(DecodeStep {
            context: usize_field(value, "context")?,
        }),
    };
    Ok(Workload {
        model,
        batch: usize_field(value, "batch")?,
        decode_tokens,
        step,
    })
}

fn gemm_request_from_json(value: &Json) -> Result<GemmRequest, NetError> {
    let mut request = GemmRequest::new(
        qmatrix_from_json(field(value, "w")?, "w")?,
        qmatrix_from_json(field(value, "a")?, "a")?,
    );
    if let Some(m) = value.get("method") {
        let token = m
            .as_str()
            .ok_or_else(|| decode_err("field 'method' must be a string"))?;
        request.method = Some(method_from_token(token)?);
    }
    if value.get("banks").is_some() {
        let banks = u64_field(value, "banks")?;
        request.banks =
            Some(u32::try_from(banks).map_err(|_| decode_err("field 'banks' overflows u32"))?);
    }
    if let Some(pin) = value.get("pin") {
        let placement = match str_field(pin, "placement")? {
            "buffer-resident" => Placement::BufferResident,
            "slice-streaming" => Placement::Streaming,
            other => return Err(decode_err(format!("unknown placement '{other}'"))),
        };
        let p = u64_field(pin, "p")?;
        request.pin = Some(PlanPin {
            placement,
            p: u32::try_from(p).map_err(|_| decode_err("field 'p' overflows u32"))?,
        });
    }
    Ok(request)
}

fn infer_request_from_json(value: &Json) -> Result<InferenceRequest, NetError> {
    let workloads = array_field(value, "workloads")?
        .iter()
        .map(workload_from_json)
        .collect::<Result<Vec<Workload>, NetError>>()?;
    let mut request = InferenceRequest::serving(workloads);
    if let Some(m) = value.get("method") {
        let token = m
            .as_str()
            .ok_or_else(|| decode_err("field 'method' must be a string"))?;
        request.method = Some(method_from_token(token)?);
    }
    if let Some(bits) = value.get("bits") {
        let token = bits
            .as_str()
            .ok_or_else(|| decode_err("field 'bits' must be a string"))?;
        request.bits = Some(
            token
                .parse::<BitConfig>()
                .map_err(|e| decode_err(format!("bad bit config '{token}': {e}")))?,
        );
    }
    Ok(request)
}

fn session_request_from_json(value: &Json) -> Result<SessionRequest, NetError> {
    let mut request = SessionRequest::new(workload_from_json(field(value, "workload")?)?);
    if let Some(m) = value.get("method") {
        let token = m
            .as_str()
            .ok_or_else(|| decode_err("field 'method' must be a string"))?;
        request.method = Some(method_from_token(token)?);
    }
    if let Some(bits) = value.get("bits") {
        let token = bits
            .as_str()
            .ok_or_else(|| decode_err("field 'bits' must be a string"))?;
        request.bits = Some(
            token
                .parse::<BitConfig>()
                .map_err(|e| decode_err(format!("bad bit config '{token}': {e}")))?,
        );
    }
    Ok(request)
}

/// Decodes a request payload.
///
/// # Errors
///
/// [`NetError::Decode`] naming the first malformed field; unknown `kind`
/// values are errors (forward compatibility is the version field's job).
pub fn decode_request(payload: &[u8]) -> Result<WireRequest, NetError> {
    let value = parse_payload(payload)?;
    match str_field(&value, "kind")? {
        "gemm" => Ok(WireRequest::Gemm(gemm_request_from_json(&value)?)),
        "infer" => Ok(WireRequest::Infer(infer_request_from_json(&value)?)),
        "session" => Ok(WireRequest::Session(session_request_from_json(&value)?)),
        "ping" => Ok(WireRequest::Ping),
        "drain" => Ok(WireRequest::Drain),
        other => Err(decode_err(format!("unknown request kind '{other}'"))),
    }
}

fn rejection_from_json(value: &Json) -> Result<Rejection, NetError> {
    match str_field(value, "reason")? {
        "queue-full" => Ok(Rejection::QueueFull {
            capacity: usize_field(value, "capacity")?,
            retry_after_ms: u64_field(value, "retry_after_ms")?,
        }),
        "quota-exhausted" => Ok(Rejection::QuotaExhausted {
            limit: u64_field(value, "limit")?,
        }),
        "draining" => Ok(Rejection::Draining),
        other => Err(decode_err(format!("unknown rejection reason '{other}'"))),
    }
}

fn gemm_response_from_json(value: &Json) -> Result<WireGemmResponse, NetError> {
    let values = array_field(value, "values")?
        .iter()
        .map(|v| {
            v.as_int()
                .and_then(|i| i32::try_from(i).ok())
                .ok_or_else(|| decode_err("GEMM values must be i32"))
        })
        .collect::<Result<Vec<i32>, NetError>>()?;
    let dims = field(value, "dims")?;
    let lut_cache = match value.get("lut_cache") {
        None => None,
        Some(j) => match j.as_str() {
            Some("hit") => Some(CacheOutcome::Hit),
            Some("miss") => Some(CacheOutcome::Miss),
            _ => return Err(decode_err("field 'lut_cache' must be \"hit\" or \"miss\"")),
        },
    };
    Ok(WireGemmResponse {
        values,
        dims: GemmDims {
            m: usize_field(dims, "m")?,
            k: usize_field(dims, "k")?,
            n: usize_field(dims, "n")?,
        },
        method: method_from_token(str_field(value, "method")?)?,
        stats: stats_from_json(field(value, "stats")?)?,
        energy_pj: uint_field(value, "energy_pj")?,
        checksum: u64_field(value, "checksum")?,
        latency_femtos: uint_field(value, "latency_femtos")?,
        lut_cache,
    })
}

fn report_seconds_from_json(value: &Json) -> Result<Vec<(f64, f64)>, NetError> {
    array_field(value, "reports")?
        .iter()
        .map(|r| {
            Ok((
                float_field(r, "prefill_seconds")?,
                float_field(r, "decode_seconds")?,
            ))
        })
        .collect()
}

fn infer_response_from_json(value: &Json) -> Result<WireInferResponse, NetError> {
    Ok(WireInferResponse {
        reports: report_seconds_from_json(value)?,
        stats: stats_from_json(field(value, "stats")?)?,
        energy_pj: uint_field(value, "energy_pj")?,
        method: method_from_token(str_field(value, "method")?)?,
    })
}

fn session_response_from_json(value: &Json) -> Result<WireSessionResponse, NetError> {
    let decode_step_femtos = array_field(value, "decode_step_femtos")?
        .iter()
        .map(|f| {
            f.as_uint()
                .ok_or_else(|| decode_err("decode step femtos must be integers"))
        })
        .collect::<Result<Vec<u128>, NetError>>()?;
    Ok(WireSessionResponse {
        reports: report_seconds_from_json(value)?,
        stats: stats_from_json(field(value, "stats")?)?,
        energy_pj: uint_field(value, "energy_pj")?,
        method: method_from_token(str_field(value, "method")?)?,
        ttft_femtos: uint_field(value, "ttft_femtos")?,
        decode_step_femtos,
    })
}

/// Decodes a response payload.
///
/// # Errors
///
/// [`NetError::Decode`] naming the first malformed field.
pub fn decode_response(payload: &[u8]) -> Result<WireResponse, NetError> {
    let value = parse_payload(payload)?;
    match str_field(&value, "kind")? {
        "gemm" => Ok(WireResponse::Gemm(gemm_response_from_json(&value)?)),
        "infer" => Ok(WireResponse::Infer(infer_response_from_json(&value)?)),
        "session" => Ok(WireResponse::Session(session_response_from_json(&value)?)),
        "rejected" => Ok(WireResponse::Rejected(rejection_from_json(&value)?)),
        "error" => Ok(WireResponse::Error {
            kind: str_field(&value, "error_kind")?.to_owned(),
            message: str_field(&value, "message")?.to_owned(),
        }),
        "pong" => Ok(WireResponse::Pong {
            served: u64_field(&value, "served")?,
        }),
        "drained" => Ok(WireResponse::Drained {
            summary: Box::new(summary_from_json(field(&value, "summary")?)?),
            cache: match value.get("cache") {
                Some(cache) => Some(cache_stats_from_json(cache)?),
                None => None,
            },
        }),
        other => Err(decode_err(format!("unknown response kind '{other}'"))),
    }
}

/// Parses a server request log (one compact JSON request per line) back
/// into the replayable form [`engine::serve::replay_serial`] takes.
/// Control verbs (`ping`/`drain`) are never logged; finding one is an
/// error, as is any malformed line.
///
/// # Errors
///
/// [`NetError::Decode`] with the 1-based line number of the first
/// problem.
pub fn parse_request_log(text: &str) -> Result<Vec<TrafficRequest>, NetError> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            match decode_request(line.as_bytes())
                .map_err(|e| decode_err(format!("log line {}: {e}", i + 1)))?
            {
                WireRequest::Gemm(r) => Ok(TrafficRequest::Gemm(r)),
                WireRequest::Infer(r) => Ok(TrafficRequest::Infer(r)),
                WireRequest::Session(r) => Ok(TrafficRequest::Session(r)),
                WireRequest::Ping | WireRequest::Drain => Err(decode_err(format!(
                    "log line {}: control requests are never logged",
                    i + 1
                ))),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::traffic::{full_log, Mix, TrafficConfig};
    use engine::Engine;

    fn mixed_log() -> Vec<TrafficRequest> {
        full_log(&TrafficConfig {
            clients: 2,
            requests_per_client: 3,
            mix: Mix::Mixed,
            seed: 11,
            decode_tokens: 4,
        })
    }

    fn chat_log() -> Vec<TrafficRequest> {
        full_log(&TrafficConfig {
            clients: 2,
            requests_per_client: 4,
            mix: Mix::Chat,
            seed: 23,
            decode_tokens: 3,
        })
    }

    fn to_wire(request: &TrafficRequest) -> WireRequest {
        match request {
            TrafficRequest::Gemm(r) => WireRequest::Gemm(r.clone()),
            TrafficRequest::Infer(r) => WireRequest::Infer(r.clone()),
            TrafficRequest::Session(r) => WireRequest::Session(r.clone()),
        }
    }

    #[test]
    fn every_traffic_request_roundtrips_bitwise() {
        // The traffic generators cover all three kinds, every optional
        // field combination they emit, and negative-capable code paths.
        let log: Vec<TrafficRequest> = mixed_log().into_iter().chain(chat_log()).collect();
        assert!(log.iter().any(|r| matches!(r, TrafficRequest::Session(_))));
        for request in log {
            let wire = to_wire(&request);
            let encoded = encode_request(&wire);
            let decoded = decode_request(encoded.as_bytes()).unwrap();
            assert_eq!(decoded, wire);
            // Canonical form: re-encoding the decoded request is stable.
            assert_eq!(encode_request(&decoded), encoded);
        }
    }

    #[test]
    fn decode_step_workloads_roundtrip_losslessly() {
        // A step-marked workload (a mid-session decode step) carries its
        // exact KV context on the wire via the optional 'context' field.
        use dnn::Workload;
        let step = Workload::decode_step(ModelConfig::opt_125m(), 2, 100);
        let wire =
            WireRequest::Session(engine::SessionRequest::new(step).with_method(Method::LoCaLut));
        let decoded = decode_request(encode_request(&wire).as_bytes()).unwrap();
        assert_eq!(decoded, wire);
    }

    #[test]
    fn optional_gemm_fields_roundtrip() {
        let base = mixed_log()
            .iter()
            .find_map(|t| match t {
                TrafficRequest::Gemm(r) => Some(r.clone()),
                _ => None,
            })
            .expect("mixed traffic contains a GEMM");
        let pinned = base
            .clone()
            .with_method(Method::LoCaLut)
            .with_banks(3)
            .with_pin(PlanPin {
                placement: Placement::Streaming,
                p: 4,
            });
        let wire = WireRequest::Gemm(pinned);
        let decoded = decode_request(encode_request(&wire).as_bytes()).unwrap();
        assert_eq!(decoded, wire);

        for control in [WireRequest::Ping, WireRequest::Drain] {
            let decoded = decode_request(encode_request(&control).as_bytes()).unwrap();
            assert_eq!(decoded, control);
        }
    }

    #[test]
    fn responses_roundtrip_and_record_identically() {
        // Serve the log in-process, project every response onto the wire,
        // decode it back, and feed a recorder from the decoded DTOs: the
        // reconstructed summary must equal the server-side one bitwise.
        let engine = Engine::builder().threads(1).banks(2).build();
        let mut server_side = ServeRecorder::new();
        let mut client_side = ServeRecorder::new();
        for request in mixed_log().into_iter().chain(chat_log()) {
            let response = match request {
                TrafficRequest::Gemm(r) => {
                    let result = engine.submit(&r);
                    server_side.record_gemm(&result);
                    gemm_result_response(&result)
                }
                TrafficRequest::Infer(r) => {
                    let result = engine.infer(&r);
                    server_side.record_infer(&result);
                    infer_result_response(&result)
                }
                TrafficRequest::Session(r) => {
                    let result = engine.infer_session(&r);
                    server_side.record_session(&result);
                    session_result_response(&result)
                }
            };
            let decoded = decode_response(encode_response(&response).as_bytes()).unwrap();
            assert_eq!(decoded, response, "response DTO must roundtrip bitwise");
            record_response(&mut client_side, &decoded);
        }
        let summary = server_side.summary();
        assert!(summary.session_requests > 0 && summary.decode_steps > 0);
        assert_eq!(client_side.summary(), summary);
    }

    #[test]
    fn control_and_failure_responses_roundtrip() {
        let summary = {
            let engine = Engine::builder().threads(1).banks(2).build();
            engine::serve::replay_serial(&engine, &mixed_log())
        };
        let cases = [
            WireResponse::Pong { served: 7 },
            WireResponse::Rejected(Rejection::QueueFull {
                capacity: 4,
                retry_after_ms: 25,
            }),
            WireResponse::Rejected(Rejection::QuotaExhausted { limit: 9 }),
            WireResponse::Rejected(Rejection::Draining),
            WireResponse::Error {
                kind: "Gemm".into(),
                message: "dimension mismatch".into(),
            },
            WireResponse::Drained {
                summary: Box::new(summary.clone()),
                cache: None,
            },
            WireResponse::Drained {
                summary: Box::new(summary),
                cache: Some(WireCacheStats {
                    lut: CacheStats {
                        hits: 3,
                        misses: 2,
                        evictions: 1,
                        resident_bytes: 4096,
                        failed_builds: 1,
                        restored: 2,
                        entries: 1,
                    },
                    memo: MemoStats {
                        hits: 5,
                        misses: 4,
                        entries: 4,
                    },
                }),
            },
        ];
        for case in cases {
            let decoded = decode_response(encode_response(&case).as_bytes()).unwrap();
            assert_eq!(decoded, case);
        }
    }

    #[test]
    fn request_log_replays_bitwise() {
        let log: Vec<TrafficRequest> = mixed_log().into_iter().chain(chat_log()).collect();
        let text: String = log
            .iter()
            .map(|r| encode_request(&to_wire(r)) + "\n")
            .collect();
        let parsed = parse_request_log(&text).unwrap();
        let engine = Engine::builder().threads(1).banks(2).build();
        let original = engine::serve::replay_serial(&engine, &log);
        let replayed = engine::serve::replay_serial(&engine, &parsed);
        assert_eq!(replayed, original);
    }

    #[test]
    fn malformed_payloads_name_the_problem() {
        let cases: [(&[u8], &str); 6] = [
            (b"not json", "not JSON"),
            (b"{\"kind\":\"gemm\"}", "missing field 'v'"),
            (b"{\"v\":1}", "missing field 'kind'"),
            (b"{\"v\":99,\"kind\":\"ping\"}", "unsupported wire version"),
            (b"{\"v\":1,\"kind\":\"warp\"}", "unknown request kind"),
            (b"{\"v\":1,\"kind\":\"gemm\"}", "missing field 'w'"),
        ];
        for (payload, needle) in cases {
            let err = decode_request(payload).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "payload {:?}: expected '{needle}' in '{err}'",
                String::from_utf8_lossy(payload)
            );
        }
        // A structurally valid matrix with out-of-range codes is refused
        // by QMatrix's own validation, surfaced as a decode error.
        let bad = b"{\"v\":1,\"kind\":\"gemm\",\"w\":{\"rows\":1,\"cols\":1,\"format\":\"bipolar\",\"scale\":1.0,\"codes\":[9]},\"a\":{\"rows\":1,\"cols\":1,\"format\":\"bipolar\",\"scale\":1.0,\"codes\":[0]}}";
        let err = decode_request(bad).unwrap_err();
        assert!(err.to_string().contains("matrix 'w'"), "got: {err}");
    }
}
