//! Network serving front-end for the LoCaLUT engine.
//!
//! This crate puts [`engine::serve::Server`] behind a TCP socket without
//! pulling in any async runtime or serialization dependency (the build
//! environment has no registry access): `std::net` blocking sockets, a
//! hand-rolled length-prefixed [`frame`] envelope, and versioned typed
//! DTOs ([`wire`]) serialized through the same dependency-free [`json`]
//! writer the perf harness uses. The layering is
//!
//! ```text
//! NetClient ──frames──▶ NetServer ──tickets──▶ engine::serve::Server
//!     │                     │
//!     └── wire DTOs ────────┴── request log (one compact JSON line per
//!         (shared by both)      admitted request, replayable bit for bit
//!                               through engine::serve::replay_serial)
//! ```
//!
//! Production concerns are first-class rather than bolted on:
//!
//! * **Backpressure** — a bounded submission queue rejects with a typed
//!   [`engine::Rejection::QueueFull`] (carrying `retry_after_ms`) instead
//!   of buffering without bound; clients retry, nothing hangs.
//! * **Quotas** — a per-connection request budget yields
//!   [`engine::Rejection::QuotaExhausted`].
//! * **Graceful drain** — a `Drain` frame (or [`server::NetServer::drain`])
//!   stops the accept loop and new admissions; every already-admitted
//!   ticket still executes, is recorded, and its response is flushed.
//! * **Determinism** — the server's final [`engine::ServeSummary`] is
//!   bit-identical to a serial replay of its request log, and a remote
//!   client reconstructs the very same summary from wire responses via
//!   [`engine::ServeRecorder`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod json;
pub mod server;
pub mod wire;

pub use client::NetClient;
pub use server::{NetConfig, NetReport, NetServer};
pub use wire::{WireCacheStats, WireGemmResponse, WireInferResponse, WireRequest, WireResponse};
