//! Three extension features in one walkthrough:
//!
//! 1. **Event tracing** — watch the simulated DPU execute a slice-streaming
//!    pass event by event (the first few events of a kernel-shaped charge
//!    sequence).
//! 2. **Elementwise packed LUTs** (§VII-A) — LUT reconfigurability beyond
//!    inner products: packed bitwise XOR and saturating add.
//! 3. **Serving-session aggregation** — the same event machinery rolled up
//!    by the `engine` session API: repeated requests, one LUT build.
//!
//! ```sh
//! cargo run --release --example trace_and_elementwise
//! ```

use engine::{Engine, GemmRequest};
use localut::elementwise::ElementwiseLut;
use pim_sim::{Category, Dpu, DpuConfig};
use quant::{NumericFormat, QMatrix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Event trace of a slice-streaming pass ==\n");
    let mut dpu = Dpu::new(DpuConfig::upmem());
    dpu.enable_trace(64);
    // One K-block with k=2 slices, 8 weight rows: the charge sequence a
    // streaming kernel issues.
    dpu.charge_lut_pair_stream(2 * 64, 2 * 128); // two slice pairs (p=6)
    dpu.charge_dram_stream(8 * 6 / 8 + 1, Category::DataTransfer); // weight block
    dpu.charge_lookup_accum(8 * 2); // 8 rows x 2 groups
    dpu.charge_dram_writeback(8 * 4, Category::OutputWriteback);
    let trace = dpu.take_trace().expect("tracing enabled");
    for event in trace.events() {
        println!("  {event}");
    }
    println!("\n  total simulated time: {:.4e} s", dpu.elapsed_seconds());

    println!("\n== Elementwise packed LUTs (§VII-A) ==\n");
    // Packed XOR: 4 bitwise XORs of 2-bit codes per lookup.
    let xor = ElementwiseLut::xor(2, 4, 1 << 20)?;
    let a = [0u16, 1, 2, 3, 3, 2, 1, 0];
    let b = [3u16, 3, 3, 3, 1, 1, 1, 1];
    println!("  a        = {a:?}");
    println!("  b        = {b:?}");
    println!(
        "  a XOR b  = {:?} ({} entries, {} ops/lookup)",
        xor.apply(&a, &b),
        xor.entry_count(),
        xor.p()
    );

    let sat = ElementwiseLut::saturating_add(3, 2, 1 << 20)?;
    let x = [5u16, 7, 1, 6];
    let y = [4u16, 4, 2, 0];
    println!("  x        = {x:?}");
    println!("  y        = {y:?}");
    println!("  x sat+ y = {:?} (saturates at 7)", sat.apply(&x, &y));

    println!("\n== Serving-session aggregation ==\n");
    // Every event the trace above showed one at a time ends up, in
    // aggregate, on a session's merged ledger when requests go through
    // the engine — and repeated requests reuse one cached LUT image.
    let engine = Engine::builder().threads(2).banks(2).build();
    let mut session = engine.session();
    for seed in 0..4u64 {
        let w = QMatrix::pseudo_random(16, 24, NumericFormat::Int(2), seed);
        let a = QMatrix::pseudo_random(24, 8, NumericFormat::Int(3), seed + 50);
        session.submit(&GemmRequest::new(w, a))?;
    }
    let cache = engine.lut_cache_stats();
    println!(
        "  {} requests: {:.4e} simulated s, {:.3e} J, LUT cache {} hit(s) / {} miss(es)",
        session.requests(),
        session.stats().total_seconds(),
        session.energy_pj() as f64 * 1e-12,
        cache.hits,
        cache.misses,
    );
    Ok(())
}
