//! Quickstart: quantize a small GEMM and serve it through the unified
//! `engine` session API — every method verified bit-exact against the
//! reference, repeated requests hitting the LUT cache, and simulated
//! times compared.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use engine::{Engine, GemmRequest};
use localut::gemm::{reference_gemm, GemmDims, Method};
use quant::{BitConfig, Quantizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("LoCaLUT quickstart: W1A3 GEMM served by the engine session API\n");

    // 1. Make some fp32 data and quantize it to W1A3.
    let cfg: BitConfig = "W1A3".parse()?;
    let dims = GemmDims {
        m: 48,
        k: 64,
        n: 12,
    };
    let mut rng = StdRng::seed_from_u64(42);
    let wdata: Vec<f32> = (0..dims.m * dims.k)
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    let adata: Vec<f32> = (0..dims.k * dims.n)
        .map(|_| rng.random_range(-4.0..4.0))
        .collect();
    let w = Quantizer::symmetric(cfg.weight_format()).quantize_matrix(&wdata, dims.m, dims.k)?;
    let a =
        Quantizer::symmetric(cfg.activation_format()).quantize_matrix(&adata, dims.k, dims.n)?;

    let scale = w.scale() * a.scale();

    // 2. Build one engine, open a session, and serve every method; all
    //    must agree exactly with the reference GEMM.
    let engine = Engine::builder().threads(2).banks(4).build();
    let mut session = engine.session();
    let reference: Vec<i32> = reference_gemm(&w, &a)?;
    println!(
        "  {:<10}  {:>14}  {:>9}",
        "method", "sim time (s)", "exact?"
    );
    let naive =
        session.submit(&GemmRequest::new(w.clone(), a.clone()).with_method(Method::NaivePim))?;
    let naive_seconds = naive.stats.total_seconds();
    for method in Method::ALL {
        let response =
            session.submit(&GemmRequest::new(w.clone(), a.clone()).with_method(method))?;
        let exact = response.values == reference;
        println!(
            "  {:<10}  {:>14.6e}  {:>9}  ({:.2}x vs naive)",
            method.label(),
            response.stats.total_seconds(),
            if exact { "yes" } else { "NO" },
            naive_seconds / response.stats.total_seconds(),
        );
        assert!(exact, "{method} diverged from the reference!");
    }
    println!(
        "\n  session: {} requests, {:.3e} J modeled, {} LUT-cache hits / {} misses",
        session.requests(),
        session.energy_pj() as f64 * 1e-12,
        engine.lut_cache_stats().hits,
        engine.lut_cache_stats().misses,
    );

    // 3. A repeated request is served from the cached LUT images and is
    //    bitwise identical.
    let first = session.submit(&GemmRequest::new(w.clone(), a.clone()))?;
    let again = session.submit(&GemmRequest::new(w, a))?;
    assert_eq!(first.values, again.values);
    assert_eq!(first.checksum, again.checksum);
    assert_eq!(again.lut_cache, Some(engine::CacheOutcome::Hit));

    // 4. Dequantized outputs approximate the fp32 GEMM.
    let mut fp32 = vec![0.0f32; dims.m * dims.n];
    for m in 0..dims.m {
        for n in 0..dims.n {
            for k in 0..dims.k {
                fp32[m * dims.n + n] += wdata[m * dims.k + k] * adata[k * dims.n + n];
            }
        }
    }
    let rms: f32 = fp32.iter().map(|x| x * x).sum::<f32>().sqrt();
    let rms_err: f32 = reference
        .iter()
        .zip(&fp32)
        .map(|(&q, &f)| (q as f32 * scale - f).powi(2))
        .sum::<f32>()
        .sqrt();
    println!(
        "\n  dequantized output relative RMS error vs fp32: {:.3} at W1A3",
        rms_err / rms
    );
    // For contrast: the same pipeline at W4A4 is much tighter — the error
    // comes from quantization, not from the LUT machinery. Same engine,
    // different formats (they key separately in the LUT cache).
    let cfg4: BitConfig = "W4A4".parse()?;
    let w4 = Quantizer::symmetric(cfg4.weight_format()).quantize_matrix(&wdata, dims.m, dims.k)?;
    let a4 =
        Quantizer::symmetric(cfg4.activation_format()).quantize_matrix(&adata, dims.k, dims.n)?;
    let scale4 = w4.scale() * a4.scale();
    let out4 = session.submit(&GemmRequest::new(w4, a4))?;
    let err4: f32 = out4
        .values
        .iter()
        .zip(&fp32)
        .map(|(&q, &f)| (q as f32 * scale4 - f).powi(2))
        .sum::<f32>()
        .sqrt();
    println!(
        "  dequantized output relative RMS error vs fp32: {:.3} at W4A4",
        err4 / rms
    );
    Ok(())
}
