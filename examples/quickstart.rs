//! Quickstart: quantize a small GEMM, run it through every method, verify
//! bit-exactness against the reference, and compare simulated times.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use localut::gemm::{reference_gemm, GemmConfig, GemmDims, Method};
use quant::{BitConfig, Quantizer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("LoCaLUT quickstart: W1A3 GEMM on one simulated UPMEM DPU\n");

    // 1. Make some fp32 data and quantize it to W1A3.
    let cfg: BitConfig = "W1A3".parse()?;
    let dims = GemmDims {
        m: 48,
        k: 64,
        n: 12,
    };
    let mut rng = StdRng::seed_from_u64(42);
    let wdata: Vec<f32> = (0..dims.m * dims.k)
        .map(|_| rng.random_range(-1.0..1.0))
        .collect();
    let adata: Vec<f32> = (0..dims.k * dims.n)
        .map(|_| rng.random_range(-4.0..4.0))
        .collect();
    let w = Quantizer::symmetric(cfg.weight_format()).quantize_matrix(&wdata, dims.m, dims.k)?;
    let a =
        Quantizer::symmetric(cfg.activation_format()).quantize_matrix(&adata, dims.k, dims.n)?;

    // 2. Run every method; all must agree exactly with the reference GEMM.
    let reference: Vec<i32> = reference_gemm(&w, &a)?;
    let gemm = GemmConfig::upmem();
    println!(
        "  {:<10}  {:>14}  {:>9}",
        "method", "sim time (s)", "exact?"
    );
    let naive_seconds = gemm.run(Method::NaivePim, &w, &a)?.profile.total_seconds();
    for method in Method::ALL {
        let result = gemm.run(method, &w, &a)?;
        let exact = result.values == reference;
        println!(
            "  {:<10}  {:>14.6e}  {:>9}  ({:.2}x vs naive)",
            method.label(),
            result.profile.total_seconds(),
            if exact { "yes" } else { "NO" },
            naive_seconds / result.profile.total_seconds(),
        );
        assert!(exact, "{method} diverged from the reference!");
    }

    // 3. Dequantized outputs approximate the fp32 GEMM.
    let scale = w.scale() * a.scale();
    let mut fp32 = vec![0.0f32; dims.m * dims.n];
    for m in 0..dims.m {
        for n in 0..dims.n {
            for k in 0..dims.k {
                fp32[m * dims.n + n] += wdata[m * dims.k + k] * adata[k * dims.n + n];
            }
        }
    }
    let rms: f32 = fp32.iter().map(|x| x * x).sum::<f32>().sqrt();
    let rms_err: f32 = reference
        .iter()
        .zip(&fp32)
        .map(|(&q, &f)| (q as f32 * scale - f).powi(2))
        .sum::<f32>()
        .sqrt();
    println!(
        "\n  dequantized output relative RMS error vs fp32: {:.3} at W1A3",
        rms_err / rms
    );
    // For contrast: the same pipeline at W4A4 is much tighter — the error
    // comes from quantization, not from the LUT machinery.
    let cfg4: BitConfig = "W4A4".parse()?;
    let w4 = Quantizer::symmetric(cfg4.weight_format()).quantize_matrix(&wdata, dims.m, dims.k)?;
    let a4 =
        Quantizer::symmetric(cfg4.activation_format()).quantize_matrix(&adata, dims.k, dims.n)?;
    let out4 = gemm.run(Method::LoCaLut, &w4, &a4)?;
    let scale4 = w4.scale() * a4.scale();
    let err4: f32 = out4
        .values
        .iter()
        .zip(&fp32)
        .map(|(&q, &f)| (q as f32 * scale4 - f).powi(2))
        .sum::<f32>()
        .sqrt();
    println!(
        "  dequantized output relative RMS error vs fp32: {:.3} at W4A4",
        err4 / rms
    );
    Ok(())
}
