//! End-to-end BERT-base inference served through the `engine` session
//! API on the simulated 2048-DPU UPMEM server: the Fig. 8 execution flow
//! (GEMMs on PIM, attention/softmax/norms on the host) across methods and
//! quantization configs, with the Fig. 16(a) phase breakdown and modeled
//! energy straight off the typed responses.
//!
//! ```sh
//! cargo run --release --example bert_inference
//! ```

use dnn::{ModelConfig, Workload};
use engine::{Engine, InferenceRequest};
use localut::Method;
use quant::BitConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let eng = Engine::builder().threads(2).build();
    let workload = Workload::prefill(ModelConfig::bert_base(), 32);
    println!("BERT-base, batch 32, seq 128, 2048 DPUs\n");

    for cfg_str in ["W1A3", "W1A4", "W2A2", "W4A4"] {
        let cfg: BitConfig = cfg_str.parse()?;
        println!("== {cfg_str} ==");
        let request = InferenceRequest::single(workload.clone()).with_bits(cfg);
        let naive = eng.infer(&request.clone().with_method(Method::NaivePim))?;
        for method in [Method::NaivePim, Method::Ltc, Method::Op, Method::LoCaLut] {
            let response = eng.infer(&request.clone().with_method(method))?;
            println!(
                "  {:<10}  {:>8.3} s  ({:>5.2}x)   {:>9.1} J",
                method.label(),
                response.total_seconds(),
                naive.total_seconds() / response.total_seconds(),
                response.energy_pj as f64 * 1e-12,
            );
        }
        // Phase breakdown for the full design.
        let localut = eng.infer(&request.clone().with_method(Method::LoCaLut))?;
        let report = &localut.reports[0];
        let total = report.total_seconds();
        print!("  LoCaLUT phases:");
        for (phase, seconds) in report.phases() {
            if seconds > 0.0 {
                print!("  {} {:.0}%", phase.label(), 100.0 * seconds / total);
            }
        }
        println!("\n");
    }

    // The paper's headline: prefill speedup holds for OPT's decode too.
    let opt = Workload::with_decode(ModelConfig::opt_125m(), 32, 8);
    let cfg: BitConfig = "W4A4".parse()?;
    let request = InferenceRequest::single(opt).with_bits(cfg);
    let op_response = eng.infer(&request.clone().with_method(Method::Op))?;
    let lo_response = eng.infer(&request.with_method(Method::LoCaLut))?;
    let (op, lo) = (&op_response.reports[0], &lo_response.reports[0]);
    println!(
        "OPT-125M W4A4 (8 output tokens): prefill {:.2}x, decode {:.2}x over OP",
        op.prefill_seconds / lo.prefill_seconds,
        op.decode_seconds / lo.decode_seconds,
    );
    Ok(())
}
