//! End-to-end BERT-base inference on the simulated 2048-DPU UPMEM server:
//! the Fig. 8 execution flow (GEMMs on PIM, attention/softmax/norms on the
//! host) across methods and quantization configs, with the Fig. 16(a)
//! phase breakdown and the energy model.
//!
//! ```sh
//! cargo run --release --example bert_inference
//! ```

use dnn::{InferenceSim, ModelConfig, Phase, Workload};
use localut::Method;
use pim_sim::EnergyModel;
use quant::BitConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sim = InferenceSim::upmem_server();
    let energy = EnergyModel::upmem();
    let sys = sim.dist.system.config().clone();
    let workload = Workload::prefill(ModelConfig::bert_base(), 32);
    println!("BERT-base, batch 32, seq 128, 2048 DPUs\n");

    for cfg_str in ["W1A3", "W1A4", "W2A2", "W4A4"] {
        let cfg: BitConfig = cfg_str.parse()?;
        println!("== {cfg_str} ==");
        let naive = sim.run(Method::NaivePim, cfg, &workload)?;
        for method in [Method::NaivePim, Method::Ltc, Method::Op, Method::LoCaLut] {
            let report = sim.run(method, cfg, &workload)?;
            let joules = energy.system_energy(&sys, &report.profile).total_j();
            println!(
                "  {:<10}  {:>8.3} s  ({:>5.2}x)   {:>9.1} J",
                method.label(),
                report.total_seconds(),
                naive.total_seconds() / report.total_seconds(),
                joules,
            );
        }
        // Phase breakdown for the full design.
        let localut = sim.run(Method::LoCaLut, cfg, &workload)?;
        let total = localut.total_seconds();
        print!("  LoCaLUT phases:");
        for (phase, seconds) in localut.phases() {
            if seconds > 0.0 {
                print!("  {} {:.0}%", phase.label(), 100.0 * seconds / total);
            }
        }
        println!("\n");
    }

    // The paper's headline: prefill speedup holds for OPT's decode too.
    let opt = Workload::with_decode(ModelConfig::opt_125m(), 32, 8);
    let cfg: BitConfig = "W4A4".parse()?;
    let op = sim.run(Method::Op, cfg, &opt)?;
    let lo = sim.run(Method::LoCaLut, cfg, &opt)?;
    println!(
        "OPT-125M W4A4 (8 output tokens): prefill {:.2}x, decode {:.2}x over OP",
        op.prefill_seconds / lo.prefill_seconds,
        op.decode_seconds / lo.decode_seconds,
    );
    let _ = Phase::GemmOnPim;
    Ok(())
}
