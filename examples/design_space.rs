//! Design-space exploration with the §IV-D performance model: capacity
//! footprints, the `p*` decision surface (queried through the `engine`
//! serving API's planner entry point), and the streaming-vs-buffer
//! break-even point (Eq. 6).
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use engine::Engine;
use localut::capacity::{localut_bytes, max_p_localut, max_p_op, op_lut_bytes};
use localut::model::PerfModel;
use localut::plan::Placement;
use localut::GemmDims;
use pim_sim::DpuConfig;
use quant::BitConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dpu = DpuConfig::upmem();
    let engine = Engine::builder().dpu(dpu.clone()).build();
    let model = PerfModel::upmem();

    println!("== Capacity fitting (§V-A) ==");
    println!(
        "  budgets: WRAM {} B, bank {} B (~55% of 64 KB / 64 MB)\n",
        dpu.wram_lut_budget(),
        dpu.bank_lut_budget()
    );
    println!(
        "  {:<6}  {:>10}  {:>10}  {:>10}  {:>10}",
        "config", "p_local", "p_DRAM", "p_local:OP", "p_DRAM:OP"
    );
    for cfg_str in ["W1A3", "W1A4", "W2A2", "W4A4"] {
        let cfg: BitConfig = cfg_str.parse()?;
        let (wf, af) = (cfg.weight_format(), cfg.activation_format());
        println!(
            "  {:<6}  {:>10}  {:>10}  {:>10}  {:>10}",
            cfg_str,
            max_p_localut(wf, af, dpu.wram_lut_budget()),
            max_p_localut(wf, af, dpu.bank_lut_budget()),
            max_p_op(wf, af, dpu.wram_lut_budget()),
            max_p_op(wf, af, dpu.bank_lut_budget()),
        );
    }

    println!("\n== Canonicalization savings at W1A3 ==");
    let cfg: BitConfig = "W1A3".parse()?;
    let (wf, af) = (cfg.weight_format(), cfg.activation_format());
    for p in [4u32, 6, 8] {
        let op = op_lut_bytes(wf, af, p).expect("in range");
        let lo = localut_bytes(wf, af, p).expect("in range");
        println!(
            "  p={p}: op-packed {op} B -> canonical+reordering {lo} B ({:.1}x)",
            op as f64 / lo as f64
        );
    }

    println!("\n== Planner decisions over M (K=768, N=128, W2A2) ==");
    let w2a2: BitConfig = "W2A2".parse()?;
    println!(
        "  {:<6}  {:>16}  {:>3}  {:>3}  {:>14}",
        "M", "placement", "p", "k", "predicted (s)"
    );
    for m in [8usize, 32, 128, 512, 2048, 8192] {
        let dims = GemmDims { m, k: 768, n: 128 };
        // `None` searches k ∈ {1, 2, 4, 8}, like a deployment sizing pass.
        let plan = engine.plan_with_k(dims, w2a2, None)?;
        println!(
            "  {:<6}  {:>16}  {:>3}  {:>3}  {:>14.4e}",
            m,
            plan.placement.to_string(),
            plan.p,
            plan.k_slices,
            plan.predicted_seconds,
        );
        // Sanity: Eq. 6 intuition — streaming only when M is large enough.
        if m <= 8 {
            assert_eq!(plan.placement, Placement::BufferResident);
        }
    }

    println!("\n== Eq. 6 break-even M (stream at p* vs buffer at p_local) ==");
    for (bw, p_star, p_local) in [(1u8, 8u32, 5u32), (2, 6, 4), (4, 3, 2)] {
        println!(
            "  bw={bw}, p*={p_star}, p_local={p_local}: break-even M = {:.0}",
            model.break_even_m(bw, p_star, p_local)
        );
    }
    Ok(())
}
