//! Floating-point LUTs (§VI-K): LUT entry counts depend only on bitwidth,
//! so the same canonicalization machinery serves FP4/FP8/FP16 — only the
//! decoded entry values change. This example prints the FP4 value table,
//! builds a canonical FP4 LUT, and reruns the Fig. 21(b) accuracy check.
//!
//! ```sh
//! cargo run --release --example float_formats
//! ```

use dnn::tasks::SyntheticTask;
use engine::Engine;
use localut::canonical::CanonicalLut;
use localut::packed::pack_index;
use localut::perm::{apply, sort_permutation};
use localut::GemmDims;
use quant::{BitConfig, NumericFormat};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("FP4 (e2m1) code table:");
    for code in 0..16u32 {
        print!("  {code:>2} -> {:>5}", NumericFormat::Fp4.decode_f32(code));
        if code % 4 == 3 {
            println!();
        }
    }

    // A canonical LUT over FP4 weights and activations at p = 2.
    let lut = CanonicalLut::<f32>::build(NumericFormat::Fp4, NumericFormat::Fp4, 2, 1 << 20)?;
    println!(
        "\ncanonical FP4 LUT at p=2: {} rows x {} cols = {} entries",
        lut.rows(),
        lut.cols(),
        lut.entry_count()
    );
    // Look up 1.5*2.0 + 6.0*0.5 = 6.0 (codes: 1.5=3, 2.0=4, 6.0=7, 0.5=1).
    let w = [3u16, 7];
    let a = [4u16, 1];
    let perm = sort_permutation(&a);
    let sorted = apply(&perm, &a);
    let col = lut.column_of(&sorted)?;
    let row = pack_index(&apply(&perm, &w), 4);
    println!("  lookup 1.5*2.0 + 6.0*0.5 = {}", lut.lookup(row, col));

    // Fig. 21(b): reordering changes fp accumulation order — negligibly.
    println!("\nViT-like FP4 accuracy, OP order vs canonical (reordered) order:");
    let data = SyntheticTask::imagenet_like().generate(400);
    println!("  fp32 ceiling: {:.1}%", 100.0 * data.fp32_accuracy());
    for p in 1..=5u32 {
        let plain = data.float_lut_accuracy(NumericFormat::Fp4, p, false)?;
        let reordered = data.float_lut_accuracy(NumericFormat::Fp4, p, true)?;
        println!(
            "  p={p}: OP {:.2}%  LoCaLUT {:.2}%  (delta {:.3} pp)",
            100.0 * plain,
            100.0 * reordered,
            100.0 * (plain - reordered).abs()
        );
    }
    println!(
        "\nFP8 largest finite: {}",
        NumericFormat::Fp8.decode_f32(0x7E)
    );
    println!(
        "FP16 of 0x3C00 (1.0): {}",
        NumericFormat::Fp16.decode_f32(0x3C00)
    );

    // LUT footprints depend only on bitwidth, so the serving engine's
    // §IV-D planner prices float formats exactly like integer ones:
    // W4A4-class budgets govern FP4 placement too.
    println!("\nEngine placement decisions, FP4-class vs W4A4 (same budgets):");
    let eng = Engine::upmem();
    let w4a4: BitConfig = "W4A4".parse()?;
    for m in [32usize, 768, 8192] {
        let dims = GemmDims { m, k: 768, n: 128 };
        let plan = eng.plan(dims, w4a4)?;
        println!(
            "  M={m:<5} -> {} at p = {} (predicted {:.3e} s/DPU)",
            plan.placement, plan.p, plan.predicted_seconds
        );
    }
    Ok(())
}
