//! Product-quantization baselines head-to-head: approximation accuracy of
//! the real PQ pipeline (k-means codebooks, centroid assignment, LUT adds)
//! vs LoCaLUT's integer-quantized pipeline on a synthetic task — a small
//! version of Fig. 15.
//!
//! ```sh
//! cargo run --release --example pq_accuracy
//! ```

use dnn::tasks::SyntheticTask;
use pq::{PqConfig, PqEngine, PqVariant};
use quant::BitConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task = SyntheticTask::glue_suite()[3].clone(); // SST-2 stand-in
    let data = task.generate(800);
    println!(
        "task {} ({} classes, dim {}), fp32 ceiling {:.1}%\n",
        task.name,
        data.classes,
        data.dim,
        100.0 * data.fp32_accuracy()
    );

    println!("LoCaLUT quantized pipelines:");
    for cfg_str in ["W1A3", "W1A4", "W2A2", "W4A4"] {
        let cfg: BitConfig = cfg_str.parse()?;
        let acc = data.quantized_accuracy(cfg)?;
        println!("  {cfg_str}: {:.1}%", 100.0 * acc);
    }

    println!("\nPQ pipelines (d=8, C=16):");
    for variant in [PqVariant::PimDl, PqVariant::LutDlaL1, PqVariant::LutDlaL2] {
        let engine = PqEngine::fit(
            PqConfig::standard(variant),
            &data.teacher,
            data.classes,
            data.dim,
            &data.features,
            data.samples,
        )?;
        let scores = engine.gemm(&data.features, data.samples)?;
        println!(
            "  {}: {:.1}%",
            variant.label(),
            100.0 * data.accuracy_of_scores(&scores)
        );
    }

    println!("\nPQ with more centroids recovers accuracy (at higher host cost):");
    for c in [8usize, 16, 32, 64] {
        let cfg = PqConfig {
            n_centroids: c,
            ..PqConfig::standard(PqVariant::PimDl)
        };
        let engine = PqEngine::fit(
            cfg,
            &data.teacher,
            data.classes,
            data.dim,
            &data.features,
            data.samples,
        )?;
        let scores = engine.gemm(&data.features, data.samples)?;
        println!("  C={c}: {:.1}%", 100.0 * data.accuracy_of_scores(&scores));
    }
    Ok(())
}
