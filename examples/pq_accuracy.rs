//! Product-quantization baselines head-to-head: approximation accuracy of
//! the real PQ pipeline (k-means codebooks, centroid assignment, LUT adds)
//! vs LoCaLUT's integer-quantized pipeline on a synthetic task — a small
//! version of Fig. 15.
//!
//! ```sh
//! cargo run --release --example pq_accuracy
//! ```

use dnn::tasks::SyntheticTask;
use engine::{Engine, GemmRequest};
use pq::{PqConfig, PqEngine, PqVariant};
use quant::{BitConfig, Quantizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let task = SyntheticTask::glue_suite()[3].clone(); // SST-2 stand-in
    let data = task.generate(800);
    println!(
        "task {} ({} classes, dim {}), fp32 ceiling {:.1}%\n",
        task.name,
        data.classes,
        data.dim,
        100.0 * data.fp32_accuracy()
    );

    // The integer pipelines score through the serving engine: quantize
    // the teacher and features, submit the scoring GEMM, dequantize the
    // returned values. Kernels are bit-exact, so this matches the
    // reference-GEMM accuracy of `TaskData::quantized_accuracy` exactly.
    let eng = Engine::builder().threads(2).banks(4).build();
    println!("LoCaLUT quantized pipelines (served):");
    for cfg_str in ["W1A3", "W1A4", "W2A2", "W4A4"] {
        let cfg: BitConfig = cfg_str.parse()?;
        let w = Quantizer::symmetric(cfg.weight_format()).quantize_matrix(
            &data.teacher,
            data.classes,
            data.dim,
        )?;
        let a = Quantizer::symmetric(cfg.activation_format()).quantize_matrix(
            &data.features,
            data.dim,
            data.samples,
        )?;
        let scale = w.scale() * a.scale();
        let response = eng.submit(&GemmRequest::new(w, a))?;
        let scores: Vec<f32> = response.values.iter().map(|&v| v as f32 * scale).collect();
        let acc = data.accuracy_of_scores(&scores);
        assert_eq!(
            acc,
            data.quantized_accuracy(cfg)?,
            "engine path diverged from the reference pipeline"
        );
        println!("  {cfg_str}: {:.1}%", 100.0 * acc);
    }

    println!("\nPQ pipelines (d=8, C=16):");
    for variant in [PqVariant::PimDl, PqVariant::LutDlaL1, PqVariant::LutDlaL2] {
        let engine = PqEngine::fit(
            PqConfig::standard(variant),
            &data.teacher,
            data.classes,
            data.dim,
            &data.features,
            data.samples,
        )?;
        let scores = engine.gemm(&data.features, data.samples)?;
        println!(
            "  {}: {:.1}%",
            variant.label(),
            100.0 * data.accuracy_of_scores(&scores)
        );
    }

    println!("\nPQ with more centroids recovers accuracy (at higher host cost):");
    for c in [8usize, 16, 32, 64] {
        let cfg = PqConfig {
            n_centroids: c,
            ..PqConfig::standard(PqVariant::PimDl)
        };
        let engine = PqEngine::fit(
            cfg,
            &data.teacher,
            data.classes,
            data.dim,
            &data.features,
            data.samples,
        )?;
        let scores = engine.gemm(&data.features, data.samples)?;
        println!("  C={c}: {:.1}%", 100.0 * data.accuracy_of_scores(&scores));
    }
    Ok(())
}
